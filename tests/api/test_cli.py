"""The ``python -m repro`` CLI surface: list/run/serve/experiment."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import PRESETS, _apply_overrides, load_spec, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestList:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("datasets:", "models:", "methods:", "device_kinds:",
                        "serving_kinds:", "experiments:", "presets:"):
            assert section in out
        assert "pipad" in out
        assert "covid19_england" in out

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        assert "sharded" in catalogue["serving_kinds"]
        assert "quick" in catalogue["presets"]
        assert "table1" in catalogue["experiments"]


class TestSpecLoading:
    def test_presets_all_validate(self):
        for name in PRESETS:
            spec = load_spec(name)
            assert spec.dataset  # parsed and validated

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"dataset": "hepth", "method": "pygt"}))
        spec = load_spec(str(path))
        assert (spec.dataset, spec.method) == ("hepth", "pygt")

    def test_unknown_source_names_presets(self):
        with pytest.raises(ValueError, match="neither a readable JSON file nor a preset"):
            load_spec("no-such-spec")

    def test_set_overrides_nested_keys(self):
        spec = load_spec(
            "distributed-4gpu",
            ["device.num_devices=8", "epochs=5", "device.interconnect=pcie"],
        )
        assert spec.device.num_devices == 8
        assert spec.device.interconnect == "pcie"
        assert spec.epochs == 5

    def test_apply_overrides_rejects_bad_syntax(self):
        with pytest.raises(ValueError, match="key=value"):
            _apply_overrides({}, ["epochs"])

    def test_shipped_spec_files_load(self):
        for path in sorted((REPO_ROOT / "specs").glob("*.json")):
            assert load_spec(str(path)).dataset


class TestRun:
    def test_run_quick_preset(self, capsys):
        assert main(["run", "quick"]) == 0
        out = capsys.readouterr().out
        assert "training [PiPAD]" in out
        assert "final loss" in out

    def test_run_json_summary(self, capsys):
        assert main(["run", "quick", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "final_loss" in summary
        assert "train_simulated_seconds" in summary

    def test_run_invalid_spec_exits_2(self, capsys):
        assert main(["run", "quick", "--set", "dataset=imagenet"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestServe:
    def test_serve_requires_serving_section(self, capsys):
        assert main(["serve", "quick"]) == 2
        assert "no serving section" in capsys.readouterr().err

    def test_serve_runs_spec_with_serving(self, capsys):
        assert main([
            "serve", "sharded-serving",
            "--set", "num_snapshots=8",
            "--set", "serving.trace.num_events=40",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine=PiPAD-Serve-x2" in out
        assert "latency p50=" in out


class TestExperiment:
    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table1", "--quick"]) == 0
        assert "covid19_england" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


def test_module_entry_point_runs():
    """``python -m repro`` is wired to the CLI (subprocess smoke)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list", "--json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == 0, result.stderr
    assert "presets" in json.loads(result.stdout)
