"""Tests for the PiPAD runtime components (slicer, prep, reuse, tuner, parallel GNN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DynamicTuner,
    GraphSlicer,
    OfflineAnalysis,
    ParallelAggregationProvider,
    PiPADConfig,
    ReuseManager,
    build_datapipe,
    build_overlap_group,
)
from repro.core.tuner import FrameProfile
from repro.gpu import GPUSpec, SimulatedGPU
from repro.nn import ExecutionContext, SequentialAggregationProvider
from repro.tensor import Tensor

SPEC = GPUSpec()


class TestConfig:
    def test_defaults_valid(self):
        config = PiPADConfig()
        assert config.s_per_candidates == (2, 4, 8)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            PiPADConfig(s_per_candidates=())
        with pytest.raises(ValueError):
            PiPADConfig(gpu_reuse_buffer_fraction=2.0)
        with pytest.raises(ValueError):
            PiPADConfig(preparing_epochs=-1)


class TestSlicer:
    def test_slice_snapshot_cached(self, small_graph):
        slicer = GraphSlicer(slice_capacity=4)
        first = slicer.slice_snapshot(small_graph[0])
        second = slicer.slice_snapshot(small_graph[0])
        assert first is second
        assert slicer.is_cached(small_graph[0].timestep)

    def test_conversion_seconds_proportional_to_nnz(self, small_graph):
        slicer = GraphSlicer()
        a = slicer.conversion_seconds(small_graph[0].adjacency)
        assert a > 0
        assert slicer.conversion_seconds(small_graph[0].adjacency) == pytest.approx(a)


class TestDataPreparer:
    def test_partition_decomposition_exact(self, small_graph):
        pipe = build_datapipe(slice_capacity=8)
        group = small_graph.snapshots[:3]
        data = pipe.partition(group)
        assert data.size == 3
        assert 0.0 <= data.overlap_rate <= 1.0
        # overlap + exclusives reconstruct each snapshot
        for snapshot, exclusive in zip(group, data.overlap.exclusives):
            rebuilt = np.union1d(data.overlap.overlap.edge_keys(), exclusive.edge_keys())
            assert np.array_equal(rebuilt, snapshot.adjacency.edge_keys())

    def test_partition_caches_by_start_and_size(self, small_graph):
        pipe = build_datapipe()
        group = small_graph.snapshots[:2]
        first = pipe.partition(group)
        seconds_after_first = pipe.preparer.total_extraction_seconds
        second = pipe.partition(group)
        assert first is second
        assert pipe.preparer.total_extraction_seconds == seconds_after_first

    def test_transfer_savings_vs_full_snapshots(self, small_graph):
        data = build_datapipe().partition(small_graph.snapshots[:4])
        assert data.adjacency_bytes < data.baseline_adjacency_bytes

    def test_partition_frame_covers_all_snapshots(self, small_graph):
        parts = build_datapipe().partition_frame(small_graph.snapshots[:6], s_per=4)
        assert [p.size for p in parts] == [4, 2]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            build_datapipe().partition([])


class TestReuseManager:
    def test_store_and_lookup(self):
        manager = ReuseManager(SimulatedGPU())
        assert manager.lookup(0) is None
        manager.store(0, np.ones((4, 2), dtype=np.float32))
        assert manager.lookup(0) is not None
        assert manager.cpu_hits == 1 and manager.misses == 1

    def test_disabled_manager_never_caches(self):
        manager = ReuseManager(SimulatedGPU(), enabled=False)
        manager.store(0, np.ones(2, dtype=np.float32))
        assert manager.lookup(0) is None
        assert not manager.has_cached(0)

    def test_gpu_residency_respects_capacity(self):
        device = SimulatedGPU()
        manager = ReuseManager(device, gpu_buffer_fraction=0.5)
        for t in range(4):
            manager.store(t, np.ones((8, 2), dtype=np.float32))
        resident = manager.plan_gpu_residency([0, 1, 2, 3], {t: 10**9 * 5 for t in range(4)})
        assert len(resident) <= 2  # 50% of 16 GB at 5 GB each
        assert all(manager.is_gpu_resident(t) for t in resident)

    def test_gpu_residency_in_use_order(self):
        manager = ReuseManager(SimulatedGPU(), gpu_buffer_fraction=0.5)
        for t in range(3):
            manager.store(t, np.ones(4, dtype=np.float32))
        resident = manager.plan_gpu_residency([2, 0, 1], {t: 100 for t in range(3)})
        assert resident[0] == 2

    def test_stats_and_clear(self):
        manager = ReuseManager(SimulatedGPU())
        manager.store(1, np.ones(4, dtype=np.float32))
        manager.lookup(1)
        stats = manager.stats()
        assert stats["cpu_cached_snapshots"] == 1
        manager.clear()
        assert manager.lookup(1) is None

    def test_invalidate_drops_entries_and_residency(self):
        manager = ReuseManager(SimulatedGPU())
        for t in range(3):
            manager.store(t, np.ones(4, dtype=np.float32))
        manager.plan_gpu_residency([0, 1, 2], {t: 16 for t in range(3)})
        removed = manager.invalidate([0, 2, 99])
        assert removed == 2
        assert manager.lookup(0) is None and manager.lookup(2) is None
        assert not manager.is_gpu_resident(0) and not manager.is_gpu_resident(2)
        assert manager.has_cached(1)

    def test_topology_delta_forces_recomputation(self, small_graph):
        """A stale cache entry must not survive a topology change: after
        ``invalidate`` the provider recomputes against the new adjacency and
        produces the (different) correct result."""
        manager = ReuseManager(SimulatedGPU())
        old = small_graph[0]
        x = Tensor(old.features)
        provider = SequentialAggregationProvider([old], cache=manager, spec=SPEC)
        (before,) = provider.aggregate_many(0, [x])
        assert manager.has_cached(old.timestep)

        # Simulate a delta hitting snapshot 0's topology: snapshot 1 has a
        # different edge set but keeps the timestep/version key.
        from repro.graph import GraphSnapshot

        changed = GraphSnapshot(
            adjacency=small_graph[1].adjacency,
            features=old.features,
            timestep=old.timestep,
        )
        # Without invalidation the stale result would be served verbatim.
        stale_provider = SequentialAggregationProvider([changed], cache=manager, spec=SPEC)
        (stale,) = stale_provider.aggregate_many(0, [x])
        np.testing.assert_allclose(stale.data, before.data)

        manager.invalidate([old.timestep])
        fresh_provider = SequentialAggregationProvider([changed], cache=manager, spec=SPEC)
        (fresh,) = fresh_provider.aggregate_many(0, [x])
        assert fresh_provider.cache_misses == 1
        assert not np.allclose(fresh.data, before.data)
        degree = changed.adjacency.row_nnz().astype(np.float32)
        expected = (
            old.features + changed.adjacency.matmul_dense(old.features)
        ) / (degree + 1.0)[:, None]
        np.testing.assert_allclose(fresh.data, expected, rtol=1e-5, atol=1e-6)


class TestOfflineAnalysisAndTuner:
    def test_build_overlap_group_hits_target_rate(self):
        overlap, exclusives, full = build_overlap_group(200, 400, 4, overlap_rate=0.6, seed=0)
        union = len(np.unique(np.concatenate([f.edge_keys() for f in full])))
        measured = overlap.nnz / union
        assert abs(measured - 0.6) < 0.1
        assert len(exclusives) == 4

    def test_speedup_increases_with_overlap_rate(self):
        analysis = OfflineAnalysis(spec=SPEC, num_nodes=256, avg_degree=4.0)
        low = analysis.speedup(4, 0.1, feature_dim=8)
        high = analysis.speedup(4, 0.9, feature_dim=8)
        assert high > low
        assert low > 0.8

    def test_speedup_table_covers_grid(self):
        analysis = OfflineAnalysis(spec=SPEC, num_nodes=128, avg_degree=3.0)
        table = analysis.speedup_table((2, 4), (0.3, 0.7), feature_dim=4)
        assert set(table) == {(2, 0.3), (2, 0.7), (4, 0.3), (4, 0.7)}

    def _profile(self, footprint, frame_activation=1e9, transfer=1e6, compute=1e-3):
        return FrameProfile(
            frame_index=0,
            overlap_rate_per_candidate={2: 0.8, 4: 0.8, 8: 0.8},
            per_snapshot_compute_seconds=compute,
            per_snapshot_transfer_bytes=transfer,
            per_snapshot_footprint_bytes=footprint,
            frame_activation_bytes=frame_activation,
        )

    def test_tuner_prefers_larger_s_per_when_memory_allows(self):
        tuner = DynamicTuner(SPEC, (2, 4, 8), feature_dim=8)
        decision = tuner.decide(self._profile(footprint=1e6))
        assert decision.s_per == 8

    def test_tuner_respects_memory_bound(self):
        tuner = DynamicTuner(SPEC, (2, 4, 8), feature_dim=8)
        # 3 GB per snapshot: only 2 fit next to a 7 GB frame working set.
        decision = tuner.decide(self._profile(footprint=3e9, frame_activation=7e9))
        assert decision.s_per == 2

    def test_tuner_falls_back_when_nothing_fits(self):
        tuner = DynamicTuner(SPEC, (2, 4, 8), feature_dim=8)
        decision = tuner.decide(self._profile(footprint=20e9))
        assert decision.s_per == 1
        assert "memory" in decision.reason

    def test_tuner_avoids_pipeline_stall(self):
        tuner = DynamicTuner(SPEC, (2, 8), feature_dim=8, stall_tolerance=1.0)
        # Huge transfers relative to compute: all candidates stall, tuner says so.
        decision = tuner.decide(self._profile(footprint=1e6, transfer=1e9, compute=1e-6))
        assert "stall" in decision.reason

    def test_tuner_requires_candidates(self):
        with pytest.raises(ValueError):
            DynamicTuner(SPEC, ())


class TestParallelProvider:
    def test_parallel_matches_sequential_numerics(self, small_graph):
        group = small_graph.snapshots[:3]
        data = build_datapipe().partition(group)
        parallel = ParallelAggregationProvider(data, spec=SPEC)
        sequential = SequentialAggregationProvider(group, kernel_name="coo", spec=SPEC)
        xs = [Tensor(s.features) for s in group]
        parallel_out = parallel.aggregate_many(0, xs)
        sequential_out = sequential.aggregate_many(0, xs)
        for a, b in zip(parallel_out, sequential_out):
            assert np.allclose(a.numpy(), b.numpy(), atol=1e-4)

    def test_parallel_gradients_flow(self, small_graph):
        group = small_graph.snapshots[:2]
        data = build_datapipe().partition(group)
        provider = ParallelAggregationProvider(data, spec=SPEC)
        xs = [Tensor(s.features, requires_grad=True) for s in group]
        outs = provider.aggregate_many(0, xs)
        (outs[0].sum() + outs[1].sum()).backward()
        assert all(x.grad is not None for x in xs)

    def test_parallel_uses_cache(self, small_graph):
        group = small_graph.snapshots[:2]
        data = build_datapipe().partition(group)
        manager = ReuseManager(SimulatedGPU())
        provider = ParallelAggregationProvider(data, spec=SPEC, cache=manager)
        xs = [Tensor(s.features) for s in group]
        provider.aggregate_many(0, xs)
        assert provider.cache_misses == 2
        provider2 = ParallelAggregationProvider(data, spec=SPEC, cache=manager)
        out_cached = provider2.aggregate_many(0, xs)
        assert provider2.cache_hits == 2
        out_fresh = ParallelAggregationProvider(data, spec=SPEC).aggregate_many(0, xs)
        for a, b in zip(out_cached, out_fresh):
            assert np.allclose(a.numpy(), b.numpy(), atol=1e-5)

    def test_single_snapshot_partition(self, small_graph):
        group = small_graph.snapshots[:1]
        data = build_datapipe().partition(group)
        provider = ParallelAggregationProvider(data, spec=SPEC)
        [out] = provider.aggregate_many(0, [Tensor(group[0].features)])
        seq = SequentialAggregationProvider(group, spec=SPEC).aggregate_many(
            0, [Tensor(group[0].features)]
        )[0]
        assert np.allclose(out.numpy(), seq.numpy(), atol=1e-4)

    def test_csr_fallback_matches(self, small_graph):
        group = small_graph.snapshots[:2]
        data = build_datapipe(use_sliced_csr=False).partition(group)
        provider = ParallelAggregationProvider(data, spec=SPEC, use_sliced_csr=False)
        xs = [Tensor(s.features) for s in group]
        outs = provider.aggregate_many(0, xs)
        seq = SequentialAggregationProvider(group, spec=SPEC).aggregate_many(0, xs)
        for a, b in zip(outs, seq):
            assert np.allclose(a.numpy(), b.numpy(), atol=1e-4)
