"""The staged datapipe: configs, stage costs, prefetch gating and parity.

The tentpole invariant mirrors the trainer suites: the datapipe only moves
*when* prep work runs on the simulated timelines — losses and serving
predictions must stay bit-identical across every prefetch depth and
pipeline variant.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import TrainerConfig
from repro.core import (
    DATAPIPE_VARIANTS,
    DataPipe,
    DataPipeConfig,
    DataPreparer,
    DistributedConfig,
    DistributedTrainer,
    PiPADConfig,
    PiPADTrainer,
    PipeItem,
    PipelineConfig,
    PipelineTrainer,
    Prefetcher,
    STAGE_REGISTRY,
    build_datapipe,
)
from repro.core.datapipe import STAGE_GATHER, STAGE_H2D, STAGE_PIN, STAGE_SLICE
from repro.gpu import SimulatedGPU
from repro.gpu.spec import HostSpec
from repro.gpu.timeline import RESOURCE_COMPUTE


def _config(model: str = "tgcn", **kwargs) -> TrainerConfig:
    defaults = dict(model=model, frame_size=4, epochs=3)
    defaults.update(kwargs)
    return TrainerConfig(**defaults)


def _pipad() -> PiPADConfig:
    return PiPADConfig(preparing_epochs=1, fixed_s_per=2)


class TestDataPipeConfig:
    def test_defaults(self):
        config = DataPipeConfig()
        assert config.pipeline == "staged"
        assert config.prefetch_depth == 2
        assert config.pin_memory is True

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown datapipe pipeline"):
            DataPipeConfig(pipeline="turbo")

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            DataPipeConfig(prefetch_depth=-1)

    @pytest.mark.parametrize("depth", [True, 2.0, "2"])
    def test_non_int_depth_rejected(self, depth):
        with pytest.raises(ValueError, match="must be an int"):
            DataPipeConfig(prefetch_depth=depth)

    def test_every_variant_is_described(self):
        for stages in DATAPIPE_VARIANTS.values():
            assert stages[0] == STAGE_SLICE
            assert stages[-1] == STAGE_H2D
            assert all(stage in STAGE_REGISTRY for stage in stages)


class TestStageComposition:
    def test_staged_default(self):
        pipe = build_datapipe()
        assert pipe.stages == (STAGE_SLICE, STAGE_GATHER, STAGE_PIN, STAGE_H2D)
        assert pipe.host_stages == (STAGE_SLICE, STAGE_GATHER, STAGE_PIN)
        assert pipe.pinned

    def test_unpinned_drops_the_pin_stage(self):
        pipe = build_datapipe(DataPipeConfig(pin_memory=False))
        assert pipe.stages == (STAGE_SLICE, STAGE_GATHER, STAGE_H2D)
        assert not pipe.pinned

    def test_monolithic_is_slice_plus_h2d(self):
        pipe = build_datapipe(DataPipeConfig(pipeline="monolithic"))
        assert pipe.stages == (STAGE_SLICE, STAGE_H2D)
        assert pipe.host_stages == (STAGE_SLICE,)


class TestStageCosts:
    HOST = HostSpec()
    ITEM = PipeItem(label="p0", num_snapshots=4, transfer_bytes=1e6)

    def test_slice_cost_follows_snapshot_count(self):
        pipe = build_datapipe(host=self.HOST)
        expected = 4 * self.HOST.snapshot_prep_us * 1e-6
        assert pipe.stage_seconds(STAGE_SLICE, self.ITEM) == pytest.approx(expected)

    def test_gather_and_pin_follow_bandwidth(self):
        pipe = build_datapipe(host=self.HOST)
        assert pipe.stage_seconds(STAGE_GATHER, self.ITEM) == pytest.approx(
            1e6 / (self.HOST.gather_bandwidth_gbs * 1e9)
        )
        assert pipe.stage_seconds(STAGE_PIN, self.ITEM) == pytest.approx(
            1e6 / (self.HOST.pin_bandwidth_gbs * 1e9)
        )

    def test_host_seconds_sums_host_stages(self):
        pipe = build_datapipe(host=self.HOST)
        assert pipe.host_seconds(self.ITEM) == pytest.approx(
            sum(pipe.stage_seconds(s, self.ITEM) for s in pipe.host_stages)
        )

    def test_slice_scale_scales_only_the_slice_stage(self):
        """Distributed shards index a fraction of the nodes but their
        gather/pin already follow the sharded ``transfer_bytes`` — scaling
        them again would double-count the shard fraction."""
        pipe = build_datapipe(host=self.HOST)
        shard = PipeItem(label="p0", num_snapshots=4, transfer_bytes=1e6, slice_scale=0.25)
        assert pipe.stage_seconds(STAGE_SLICE, shard) == pytest.approx(
            0.25 * pipe.stage_seconds(STAGE_SLICE, self.ITEM)
        )
        for stage in (STAGE_GATHER, STAGE_PIN):
            assert pipe.stage_seconds(stage, shard) == pipe.stage_seconds(stage, self.ITEM)

    def test_h2d_is_not_a_host_stage(self):
        with pytest.raises(ValueError, match="not a host stage"):
            build_datapipe().stage_seconds(STAGE_H2D, self.ITEM)


class _RecordingHooks:
    """Captures on_prefetch events so tests can see per-stage op times."""

    def __init__(self):
        self.events = []

    def on_prefetch(self, stage, item, device_index, start, end, domain="train"):
        self.events.append((stage, item, device_index, start, end, domain))

    def first_host_start(self, label):
        return min(e[3] for e in self.events if e[1] == label and e[0] != STAGE_H2D)


def _drive(depth, items, *, compute_seconds=1e-3):
    """Schedule/consume ``items`` through a fresh prefetcher; returns the
    recorded hook events plus the consume op of every item."""
    device = SimulatedGPU()
    pipe = build_datapipe(DataPipeConfig(prefetch_depth=depth))
    hooks = _RecordingHooks()
    prefetcher = Prefetcher(pipe, device, hooks=lambda: hooks)
    consumes = []
    for index, transfer_bytes in enumerate(items):
        item = PipeItem(label=f"p{index}", num_snapshots=2, transfer_bytes=transfer_bytes)
        (transfer,) = prefetcher.schedule(item)
        # A compute-resource op stands in for the kernels reading the item;
        # host_op would serialize with the prep stages on the CPU resource.
        consume = device.timeline.submit(
            label=f"consume_p{index}",
            kind="kernel",
            resource=RESOURCE_COMPUTE,
            duration=compute_seconds,
            depends_on=[transfer],
        )
        prefetcher.mark_consumed([consume])
        consumes.append(consume)
    return hooks, consumes, prefetcher


class TestPrefetcherGating:
    def test_depth_zero_serializes_prep_behind_consumption(self):
        hooks, consumes, _ = _drive(0, [1e6, 1e6, 1e6])
        for index in range(1, 3):
            assert hooks.first_host_start(f"p{index}") >= consumes[index - 1].end

    def test_depth_one_overlaps_next_item_with_current_compute(self):
        hooks, consumes, _ = _drive(1, [1e6, 1e6, 1e6])
        # Item 1 may prepare while item 0 computes...
        assert hooks.first_host_start("p1") < consumes[0].end
        # ...but item 2 still waits for item 0's consumption (depth bound).
        assert hooks.first_host_start("p2") >= consumes[0].end

    def test_transfers_stay_fifo_on_the_copy_engine(self):
        hooks, _, _ = _drive(3, [4e6, 1e6, 2e6, 3e6])
        transfers = [e for e in hooks.events if e[0] == STAGE_H2D]
        starts = [e[3] for e in transfers]
        assert starts == sorted(starts)
        assert [e[1] for e in transfers] == ["p0", "p1", "p2", "p3"]

    def test_in_flight_counts_unconsumed_items(self):
        device = SimulatedGPU()
        prefetcher = Prefetcher(build_datapipe(), device, depth=4)
        item = PipeItem(label="p", num_snapshots=1, transfer_bytes=1e3)
        prefetcher.schedule(item)
        prefetcher.schedule(item)
        assert prefetcher.in_flight == 2
        prefetcher.mark_consumed([device.host_op(1e-6, label="c")])
        assert prefetcher.in_flight == 1

    def test_mark_consumed_without_outstanding_items_is_a_noop(self):
        device = SimulatedGPU()
        prefetcher = Prefetcher(build_datapipe(), device)
        prefetcher.mark_consumed([device.host_op(1e-6, label="c")])
        assert prefetcher.in_flight == 0

    def test_stats_report_depth_items_and_host_seconds(self):
        hooks, _, prefetcher = _drive(2, [1e6, 1e6])
        stats = prefetcher.stats()
        assert stats["prefetch_depth"] == 2.0
        assert stats["prefetch_items"] == 2.0
        host_spans = [e for e in hooks.events if e[0] != STAGE_H2D]
        assert stats["prefetch_host_seconds"] == pytest.approx(
            sum(end - start for (_, _, _, start, end, _) in host_spans)
        )

    def test_negative_depth_override_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Prefetcher(build_datapipe(), SimulatedGPU(), depth=-1)

    def _two_device_drive(self, depth):
        """One item per device through prefetchers sharing a single pipe,
        consuming on device 0 between the two schedules."""
        pipe = build_datapipe(DataPipeConfig(prefetch_depth=depth))
        devices = [SimulatedGPU(), SimulatedGPU()]
        hooks = _RecordingHooks()
        prefetchers = [
            Prefetcher(pipe, dev, device_index=i, hooks=lambda: hooks)
            for i, dev in enumerate(devices)
        ]
        (transfer,) = prefetchers[0].schedule(
            PipeItem(label="a", num_snapshots=2, transfer_bytes=1e6)
        )
        consume = devices[0].timeline.submit(
            label="consume_a",
            kind="kernel",
            resource=RESOURCE_COMPUTE,
            duration=1e-3,
            depends_on=[transfer],
        )
        prefetchers[0].mark_consumed([consume])
        prefetchers[1].schedule(
            PipeItem(label="b", num_snapshots=2, transfer_bytes=1e6)
        )
        return hooks, consume

    def test_depth_zero_serializes_across_devices(self):
        """No prefetching means ONE synchronous host thread: item b's prep on
        device 1 cannot start until item a — on device 0 — was consumed."""
        hooks, consume = self._two_device_drive(0)
        assert hooks.first_host_start("b") >= consume.end

    def test_depth_one_gives_each_device_its_own_worker(self):
        hooks, consume = self._two_device_drive(1)
        assert hooks.first_host_start("b") < consume.end


class TestPrefetcherProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        depth=st.integers(min_value=0, max_value=3),
        sizes=st.lists(
            st.floats(min_value=1e3, max_value=1e7), min_size=1, max_size=6
        ),
    )
    def test_order_preserved_and_depth_bound_holds(self, depth, sizes):
        hooks, consumes, prefetcher = _drive(depth, sizes)
        # Order: transfers complete in schedule order on the copy stream.
        transfers = [e for e in hooks.events if e[0] == STAGE_H2D]
        ends = [e[4] for e in transfers]
        assert ends == sorted(ends)
        # Depth bound: item i's prep never starts before the consumption of
        # item i - depth - 1, so at most ``depth`` items run ahead.
        for index in range(len(sizes)):
            gate = index - depth - 1
            if gate >= 0:
                assert hooks.first_host_start(f"p{index}") >= consumes[gate].end
        assert prefetcher.in_flight == 0  # balanced schedule/consume


class TestDeprecatedPreparePath:
    def test_prepare_warns_at_the_caller(self, small_graph):
        preparer = DataPreparer()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            data = preparer.prepare(small_graph.snapshots[:2])
        (warning,) = [w for w in record if issubclass(w.category, DeprecationWarning)]
        assert warning.filename == __file__
        assert "datapipe" in str(warning.message)
        # The shim delegates: the cached partition is the internal one.
        assert data is preparer._prepare(small_graph.snapshots[:2])

    def test_internal_and_datapipe_paths_do_not_warn(self, small_graph):
        pipe = build_datapipe()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            pipe.partition(small_graph.snapshots[:2])
            pipe.preparer._prepare(small_graph.snapshots[2:4])
            pipe.partition_frame(small_graph.snapshots[:4], 2)
        assert not [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestTrainerParity:
    """Prefetching reorders prep on the timelines; the math is untouched."""

    @pytest.mark.parametrize("model", ["tgcn", "evolvegcn", "mpnn_lstm"])
    def test_pipad_losses_bit_identical_across_depths(self, small_graph, model):
        curves = {}
        for depth in (0, 4):
            trainer = PiPADTrainer(
                small_graph,
                _config(model),
                _pipad(),
                data_config=DataPipeConfig(prefetch_depth=depth),
            )
            curves[depth] = trainer.train().loss_curve()
        assert curves[0] == curves[4]

    def test_monolithic_variant_matches_staged(self, small_graph):
        staged = PiPADTrainer(
            small_graph, _config(), _pipad(), data_config=DataPipeConfig()
        ).train()
        monolithic = PiPADTrainer(
            small_graph,
            _config(),
            _pipad(),
            data_config=DataPipeConfig(pipeline="monolithic", pin_memory=False),
        ).train()
        assert monolithic.loss_curve() == staged.loss_curve()

    def test_pipeline_trainer_parity_and_prefetch_wins(self, small_graph):
        results = {}
        for depth in (0, 2):
            results[depth] = PipelineTrainer(
                small_graph,
                _config(cost_scale=2000.0),
                _pipad(),
                PipelineConfig(num_devices=3),
                data_config=DataPipeConfig(prefetch_depth=depth),
            ).train()
        assert results[0].loss_curve() == results[2].loss_curve()
        # Overlapping host prep with device compute must not slow the run.
        assert results[2].simulated_seconds <= results[0].simulated_seconds

    def test_distributed_trainer_parity(self, small_graph):
        results = {}
        for depth in (0, 2):
            results[depth] = DistributedTrainer(
                small_graph,
                _config(cost_scale=2000.0),
                _pipad(),
                DistributedConfig(num_devices=4),
                data_config=DataPipeConfig(prefetch_depth=depth),
            ).train()
        assert results[0].loss_curve() == results[2].loss_curve()
        assert results[2].simulated_seconds <= results[0].simulated_seconds

    def test_prefetch_stats_reported(self, small_graph):
        result = PiPADTrainer(
            small_graph, _config(), _pipad(), data_config=DataPipeConfig()
        ).train()
        assert result.extras["prefetch_depth"] == 2.0
        assert result.extras["prefetch_items"] > 0
        assert result.extras["prefetch_host_seconds"] > 0

    def test_disabled_pipeline_forces_serial_unpinned_prep(self, small_graph):
        trainer = PiPADTrainer(
            small_graph,
            _config(),
            PiPADConfig(preparing_epochs=1, enable_pipeline=False),
            data_config=DataPipeConfig(prefetch_depth=4, pin_memory=True),
        )
        assert trainer.data.prefetch_depth == 0
        assert trainer.data.pin_memory is False
        assert trainer.prefetcher.depth == 0


class TestServingParity:
    def _scheduler(self, small_graph, depth):
        from repro.nn import build_model
        from repro.serving import ServingConfig
        from repro.serving.scheduler import _build_serving_scheduler

        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        return _build_serving_scheduler(
            small_graph,
            model,
            ServingConfig(window=4, max_batch_requests=4, max_delay_ms=0.5),
            data=DataPipeConfig(prefetch_depth=depth),
        )

    def test_predictions_bit_identical_across_depths(self, small_graph):
        outputs = {}
        for depth in (0, 2):
            scheduler = self._scheduler(small_graph, depth)
            scheduler.submit(np.arange(6), at=0.0)
            (first,) = scheduler.pump(0.0, force=True)
            scheduler.submit(np.arange(10, 16), at=1.0)
            (second,) = scheduler.pump(1.0, force=True)
            outputs[depth] = (first.predictions, second.predictions)
        for batch0, batch2 in zip(outputs[0], outputs[2]):
            assert set(batch0) == set(batch2)
            for rid in batch0:
                np.testing.assert_array_equal(batch0[rid], batch2[rid])

    def test_trace_reports_agree_on_everything_but_timing(self, small_graph):
        from repro.serving import synthesize_serving_trace

        reports = {}
        for depth in (0, 2):
            scheduler = self._scheduler(small_graph, depth)
            trace = synthesize_serving_trace(scheduler.store.head, 40, seed=3)
            reports[depth] = scheduler.run_trace(trace)
        assert reports[0].metrics.num_requests == reports[2].metrics.num_requests
        assert reports[0].metrics.deltas_ingested == reports[2].metrics.deltas_ingested
        assert reports[0].metrics.cache_hit_rate == reports[2].metrics.cache_hit_rate
        assert reports[0].reuse_stats == reports[2].reuse_stats
        assert reports[2].extras["prefetch_depth"] == 2.0
        assert reports[2].extras["prefetch_items"] > 0
