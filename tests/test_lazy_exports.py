"""Every lazily exported top-level name must actually resolve."""

from __future__ import annotations

import pytest

import repro


@pytest.mark.parametrize("name", sorted(repro._LAZY_EXPORTS))
def test_lazy_export_resolves(name):
    assert getattr(repro, name) is not None


def test_all_matches_lazy_exports():
    assert set(repro.__all__) == {"__version__", *repro._LAZY_EXPORTS}


def test_dir_lists_exports():
    listing = dir(repro)
    for name in repro._LAZY_EXPORTS:
        assert name in listing


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError, match="no attribute 'FluxCapacitor'"):
        repro.FluxCapacitor


def test_subpackage_alls_are_exported_at_top_level():
    """The serving/distributed/api façade names are all reachable from repro.*"""
    import repro.api
    import repro.distributed
    import repro.serving

    for module, skip in (
        (repro.serving, set()),
        (repro.distributed, {"COMM_STREAM", "RESOURCE_PEER_LINK"}),
    ):
        missing = [
            name
            for name in module.__all__
            if name not in skip and name not in repro._LAZY_EXPORTS
        ]
        assert not missing, f"{module.__name__} names missing from repro: {missing}"
    for name in ("Engine", "RunSpec", "RunReport", "DeviceSpec", "ServingSpec", "TraceSpec"):
        assert name in repro._LAZY_EXPORTS
