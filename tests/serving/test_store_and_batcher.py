"""Tests for the serving-side graph state: deltas, store, batcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import extract_overlap
from repro.serving import (
    GraphDelta,
    IncrementalSnapshotStore,
    InferenceRequest,
    MicroBatcher,
    random_delta,
    synthesize_serving_trace,
)


class TestGraphDelta:
    def test_empty_delta(self):
        delta = GraphDelta.empty()
        assert delta.is_empty
        assert delta.num_added == delta.num_removed == delta.num_feature_updates == 0

    def test_edge_keys_roundtrip(self):
        delta = GraphDelta(added_edges=np.array([[1, 2], [3, 4]]))
        assert delta.added_keys(10).tolist() == [12, 34]

    def test_random_delta_evolves_keys(self, small_graph):
        rng = np.random.default_rng(0)
        keys = small_graph[0].adjacency.edge_keys()
        delta, new_keys = random_delta(keys, small_graph.num_nodes, rng)
        assert delta.num_added == delta.num_removed > 0
        assert len(new_keys) == len(keys)
        assert not np.array_equal(new_keys, keys)


class TestIncrementalSnapshotStore:
    def test_seeds_from_dynamic_graph_tail(self, small_graph, make_snapshot_store):
        store = make_snapshot_store(window=4)
        assert store.window_size == 4
        assert store.version == small_graph[-1].timestep
        assert store.window_versions() == [s.timestep for s in small_graph.snapshots[-4:]]

    def test_apply_advances_version_and_slides_window(self, make_snapshot_store):
        store = make_snapshot_store(window=3)
        before = store.window_versions()
        report = store.apply(GraphDelta.empty())
        assert report.version == before[-1] + 1
        assert report.evicted_version == before[0]
        assert store.window_versions() == before[1:] + [report.version]

    def test_empty_delta_touches_nothing_and_shares_adjacency(self, make_snapshot_store):
        store = make_snapshot_store()
        head_before = store.head
        report = store.apply(GraphDelta.empty())
        assert report.num_touched == 0
        # No topology change: the new version shares the adjacency object.
        assert store.head.adjacency is head_before.adjacency

    def test_edge_delta_touches_source_rows(self, make_snapshot_store):
        store = make_snapshot_store()
        n = store.num_nodes
        keys = store.head.adjacency.edge_keys()
        victim = int(keys[0])
        delta = GraphDelta(removed_edges=np.array([[victim // n, victim % n]]))
        report = store.apply(delta)
        assert report.num_removed == 1
        assert victim // n in report.touched_rows.tolist()
        assert victim not in store.head.adjacency.edge_keys().tolist()

    def test_feature_delta_touches_in_neighbors(self, make_snapshot_store):
        store = make_snapshot_store()
        n = store.num_nodes
        keys = store.head.adjacency.edge_keys()
        target = int(keys[0] % n)  # a node that has at least one in-neighbor
        delta = GraphDelta(feature_updates={target: np.zeros(store.feature_dim)})
        report = store.apply(delta)
        touched = set(report.touched_rows.tolist())
        assert target in touched
        in_neighbors = {int(k // n) for k in keys if int(k % n) == target}
        assert in_neighbors <= touched
        assert np.allclose(store.head.features[target], 0.0)

    def test_decomposition_matches_from_scratch_after_deltas(self, make_snapshot_store):
        store = make_snapshot_store(window=4)
        rng = np.random.default_rng(1)
        for _ in range(6):
            delta, _ = random_delta(
                store.head.adjacency.edge_keys(), store.num_nodes, rng,
                feature_update_fraction=0.05, feature_dim=store.feature_dim,
            )
            store.apply(delta)
        incremental = store.decomposition()
        scratch = extract_overlap([s.adjacency for s in store.window_snapshots()])
        assert np.array_equal(incremental.overlap.edge_keys(), scratch.overlap.edge_keys())
        for a, b in zip(incremental.exclusives, scratch.exclusives):
            assert np.array_equal(a.edge_keys(), b.edge_keys())
        assert incremental.overlap_rate == pytest.approx(scratch.overlap_rate)

    def test_partition_decomposition_reconstructs_members(self, make_snapshot_store):
        store = make_snapshot_store(window=4)
        sub = store.partition_decomposition([1, 2])
        snapshots = store.window_snapshots()
        for position, exclusive in zip([1, 2], sub.exclusives):
            rebuilt = np.union1d(sub.overlap.edge_keys(), exclusive.edge_keys())
            assert np.array_equal(rebuilt, snapshots[position].adjacency.edge_keys())

    def test_single_snapshot_store(self, small_graph):
        store = IncrementalSnapshotStore(small_graph[0], window=2)
        assert store.window_size == 1
        assert store.decomposition().overlap_rate == pytest.approx(1.0)
        store.apply(GraphDelta.empty())
        assert store.window_size == 2


class TestSynthesizedTrace:
    def test_trace_is_reproducible_and_sorted(self, small_graph):
        a = synthesize_serving_trace(small_graph[0], 40, seed=9)
        b = synthesize_serving_trace(small_graph[0], 40, seed=9)
        assert [e.kind for e in a] == [e.kind for e in b]
        times = [e.time for e in a]
        assert times == sorted(times)
        assert {e.kind for e in a} == {"delta", "request"}


class TestMicroBatcher:
    def request(self, rid, nodes, at):
        return InferenceRequest(request_id=rid, node_ids=np.asarray(nodes), arrival_time=at)

    def test_cuts_on_max_requests(self):
        batcher = MicroBatcher(max_requests=2, max_delay_ms=1000.0)
        batcher.submit(self.request(0, [1], 0.0))
        assert not batcher.ready(0.0)
        batcher.submit(self.request(1, [2], 0.0))
        batches = batcher.drain(0.0)
        assert len(batches) == 1 and batches[0].size == 2
        assert batcher.pending == 0

    def test_cuts_on_delay(self):
        batcher = MicroBatcher(max_requests=100, max_delay_ms=1.0)
        batcher.submit(self.request(0, [1], 0.0))
        assert batcher.drain(0.0005) == []
        batches = batcher.drain(0.002)
        assert len(batches) == 1

    def test_force_drains_everything(self):
        batcher = MicroBatcher(max_requests=100, max_delay_ms=1000.0)
        for i in range(5):
            batcher.submit(self.request(i, [i], 0.0))
        batches = batcher.drain(0.0, force=True)
        assert sum(b.size for b in batches) == 5

    def test_batch_node_union_deduplicates(self):
        batcher = MicroBatcher(max_requests=2, max_delay_ms=0.0)
        batcher.submit(self.request(0, [3, 1], 0.0))
        batcher.submit(self.request(1, [1, 2], 0.0))
        (batch,) = batcher.drain(0.0)
        assert batch.node_ids.tolist() == [1, 2, 3]
