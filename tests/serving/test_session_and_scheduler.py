"""Tests for the inference session, serving policy and scheduler.

Engine/model/store wiring comes from the shared fixtures in
``tests/conftest.py`` (``make_serving_engine``, ``reference_aggregation``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.core import ReuseManager
from repro.serving import GraphDelta, random_delta, synthesize_serving_trace


class TestInferenceSession:
    def test_incremental_patch_matches_full_recompute(
        self, make_serving_engine, reference_aggregation
    ):
        engine = make_serving_engine()
        session, store = engine.session, engine.store
        # Populate the cache for the current head via one forward pass.
        session.predict(np.arange(4), s_per=2)
        assert session.reuse.has_cached(store.version)
        # Apply a topology + feature delta and patch incrementally.
        rng = np.random.default_rng(2)
        delta, _ = random_delta(
            store.head.adjacency.edge_keys(), store.num_nodes, rng,
            feature_update_fraction=0.1, feature_dim=store.feature_dim,
        )
        report = store.apply(delta)
        assert report.num_touched > 0
        session.refresh(report)
        patched = session.reuse.peek(report.version)
        assert patched is not None
        np.testing.assert_allclose(
            patched, reference_aggregation(store.head), rtol=1e-5, atol=1e-6
        )

    def test_refresh_invalidates_evicted_version(self, make_serving_engine):
        engine = make_serving_engine()
        session, store = engine.session, engine.store
        session.predict(np.arange(2), s_per=4)
        evict_candidate = store.window_versions()[0]
        assert session.reuse.has_cached(evict_candidate)
        report = store.apply(GraphDelta.empty())
        session.refresh(report)
        assert report.evicted_version == evict_candidate
        assert not session.reuse.has_cached(evict_candidate)

    def test_predictions_identical_with_and_without_reuse(self, make_serving_engine):
        reuse_engine = make_serving_engine(enable_reuse=True)
        naive_engine = make_serving_engine(enable_reuse=False)
        nodes = np.arange(6)
        # Warm the reuse cache, then predict again (cache-served path).
        reuse_engine.session.predict(nodes, s_per=2)
        warm, _ = reuse_engine.session.predict(nodes, s_per=2)
        cold, _ = naive_engine.session.predict(nodes, s_per=2)
        np.testing.assert_allclose(warm, cold, rtol=1e-5, atol=1e-6)

    def test_predictions_invariant_to_s_per(self, make_serving_engine):
        engine = make_serving_engine(enable_reuse=False)
        nodes = np.arange(5)
        one, _ = engine.session.predict(nodes, s_per=1)
        four, _ = engine.session.predict(nodes, s_per=4)
        np.testing.assert_allclose(one, four, rtol=1e-5, atol=1e-6)

    def test_stale_cache_would_differ_hence_invalidation_matters(
        self, make_serving_engine
    ):
        """A topology delta changes the aggregation, so serving stale cache
        rows would be wrong — this pins down why refresh() must patch."""
        engine = make_serving_engine()
        store = engine.store
        engine.session.predict(np.arange(2), s_per=4)
        stale = np.array(engine.session.reuse.peek(store.version), copy=True)
        keys = store.head.adjacency.edge_keys()
        n = store.num_nodes
        delta = GraphDelta(
            removed_edges=np.array([[int(keys[0]) // n, int(keys[0]) % n]])
        )
        report = store.apply(delta)
        engine.session.refresh(report)
        fresh = engine.session.reuse.peek(report.version)
        assert not np.allclose(stale, fresh)


class TestServingScheduler:
    def test_run_trace_end_to_end(self, make_serving_engine):
        engine = make_serving_engine()
        trace = synthesize_serving_trace(engine.store.head, 60, seed=4)
        report = engine.run_trace(trace)
        num_requests = sum(1 for e in trace if e.kind == "request")
        num_deltas = len(trace) - num_requests
        assert report.metrics.num_requests == num_requests
        assert report.metrics.deltas_ingested == num_deltas
        assert report.metrics.cache_hit_rate > 0
        assert report.p99_latency >= report.p50_latency > 0
        assert report.throughput_rps > 0

    def test_latency_includes_arrival_wait(self, make_serving_engine):
        engine = make_serving_engine(max_delay_ms=0.0)
        rid = engine.submit([0, 1], at=5.0)
        (result,) = engine.pump(5.0, force=True)
        record = engine.metrics.requests[0]
        assert record.request_id == rid
        assert record.completion_time >= 5.0  # not_before honoured
        assert record.latency > 0

    def test_batch_predictions_routed_per_request(self, make_serving_engine):
        engine = make_serving_engine(max_batch_requests=2, max_delay_ms=1000.0)
        a = engine.submit([0, 1], at=0.0)
        b = engine.submit([1, 2], at=0.0)
        (result,) = engine.pump(0.0)
        assert set(result.predictions) == {a, b}
        assert result.predictions[a].shape[0] == 2
        # Shared node 1 gets the same prediction in both requests.
        np.testing.assert_allclose(
            result.predictions[a][1], result.predictions[b][0]
        )

    def test_tuner_policy_picks_candidate(self, make_serving_engine):
        engine = make_serving_engine()
        engine.submit([0], at=0.0)
        engine.pump(0.0, force=True)
        (decision,) = engine.policy.decisions
        assert decision.s_per in engine.policy.tuner.candidates
        assert "forward-only" in decision.reason

    def test_fixed_s_per_bypasses_tuner(self, make_serving_engine):
        engine = make_serving_engine(fixed_s_per=2)
        engine.submit([0], at=0.0)
        engine.pump(0.0, force=True)
        assert engine.policy.decisions[0].s_per == 2
        assert engine.policy.decisions[0].reason == "fixed by configuration"

    def test_report_converts_to_training_result(self, make_serving_engine):
        engine = make_serving_engine()
        trace = synthesize_serving_trace(engine.store.head, 30, seed=6)
        report = engine.run_trace(trace)
        result = report.to_training_result()
        assert result.method == "PiPAD-Serve"
        assert result.extras["cache_hit_rate"] == report.cache_hit_rate
        assert result.simulated_seconds == report.simulated_seconds

    def test_incremental_beats_naive_on_same_trace(self, small_graph, make_serving_engine):
        trace = synthesize_serving_trace(small_graph[-1], 80, seed=11)
        fast = make_serving_engine().run_trace(trace)
        slow = make_serving_engine(
            enable_reuse=False, fixed_s_per=1, enable_pipeline=False
        ).run_trace(trace)
        assert fast.metrics.mean_latency < slow.metrics.mean_latency
        assert fast.cache_hit_rate > 0 and slow.cache_hit_rate == 0

    def test_models_all_serve(self, make_serving_engine):
        for name in ("tgcn", "evolvegcn", "mpnn_lstm"):
            engine = make_serving_engine(model_name=name)
            engine.submit([0, 1], at=0.0)
            results = engine.pump(0.0, force=True)
            assert results and np.isfinite(
                results[0].predictions[0]
            ).all(), name


class TestReuseForwardOnlyAPI:
    def test_peek_does_not_count_stats(self):
        manager = ReuseManager(SimulatedGPU())
        manager.store(3, np.ones((2, 2), dtype=np.float32))
        assert manager.peek(3) is not None
        assert manager.peek(4) is None
        assert manager.cpu_hits == 0 and manager.misses == 0

    def test_hit_rate(self):
        manager = ReuseManager(SimulatedGPU())
        manager.store(0, np.ones(2, dtype=np.float32))
        manager.lookup(0)
        manager.lookup(1)
        assert manager.hit_rate() == pytest.approx(0.5)
