"""Edge-case tests for the serving metrics window.

Pins down the degenerate aggregates benchmarks would otherwise silently
mis-read: empty-window percentiles must be NaN (not a too-good-to-be-true
0.0), a single request collapses every percentile to its latency, and the
``to_training_result`` projection keeps latency extras in milliseconds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serving import BatchRecord, RequestRecord, ServingMetrics, ServingReport


def record(rid: int, arrival: float, completion: float) -> RequestRecord:
    return RequestRecord(
        request_id=rid,
        batch_id=0,
        arrival_time=arrival,
        completion_time=completion,
        num_nodes=1,
    )


class TestEmptyWindow:
    def test_percentiles_are_nan_not_zero(self):
        """Regression: an empty window read as p50 == 0.0 — "perfect latency"."""
        metrics = ServingMetrics()
        assert math.isnan(metrics.latency_percentile(50.0))
        assert math.isnan(metrics.p50_latency)
        assert math.isnan(metrics.p99_latency)
        assert math.isnan(metrics.mean_latency)

    def test_nan_latency_never_compares_as_fast(self):
        empty = ServingMetrics()
        loaded = ServingMetrics()
        loaded.record_request(record(0, 0.0, 1.0))
        # The failure mode the fix prevents: 0.0 < any real latency.
        assert not empty.mean_latency < loaded.mean_latency
        assert not empty.mean_latency > loaded.mean_latency

    def test_counts_and_rates_stay_zero(self):
        metrics = ServingMetrics()
        assert metrics.num_requests == 0
        assert metrics.throughput_rps() == 0.0
        assert metrics.cache_hit_rate == 0.0
        assert metrics.mean_batch_size() == 0.0

    def test_summary_serializes_nan(self):
        summary = ServingMetrics().summary()
        assert math.isnan(summary["p50_latency_ms"])
        assert summary["requests"] == 0.0


class TestSingleRequest:
    def test_all_percentiles_equal_the_single_latency(self):
        metrics = ServingMetrics()
        metrics.record_request(record(0, 2.0, 2.25))
        assert metrics.p50_latency == pytest.approx(0.25)
        assert metrics.p99_latency == pytest.approx(0.25)
        assert metrics.p50_latency == metrics.p99_latency
        assert metrics.mean_latency == pytest.approx(0.25)

    def test_single_instant_request_throughput_is_inf(self):
        metrics = ServingMetrics()
        metrics.record_request(record(0, 1.0, 1.0))
        assert metrics.throughput_rps() == float("inf")


class TestUnits:
    def make_report(self, latencies_s):
        metrics = ServingMetrics()
        for rid, latency in enumerate(latencies_s):
            metrics.record_request(record(rid, 0.0, latency))
        return ServingReport(
            engine="PiPAD-Serve",
            model="tgcn",
            dataset="unit-test",
            simulated_seconds=1.0,
            wall_seconds=0.1,
            metrics=metrics,
        )

    def test_to_result_latency_units_stay_in_ms(self):
        """Regression: latency extras are milliseconds (seconds * 1e3)."""
        report = self.make_report([0.002, 0.004, 0.006])
        result = report.to_training_result()
        assert result.extras["mean_latency_ms"] == pytest.approx(4.0)
        assert result.extras["p50_latency_ms"] == pytest.approx(4.0)
        assert result.extras["p50_latency_ms"] == pytest.approx(
            report.p50_latency * 1e3
        )
        # And the raw report quantities stay in seconds.
        assert report.p50_latency == pytest.approx(0.004)

    def test_percentile_ordering_preserved(self):
        latencies = np.linspace(0.001, 0.1, 100)
        report = self.make_report(latencies.tolist())
        assert report.p99_latency > report.p50_latency > 0
        assert report.metrics.latency_percentile(0.0) == pytest.approx(0.001)
        assert report.metrics.latency_percentile(100.0) == pytest.approx(0.1)
