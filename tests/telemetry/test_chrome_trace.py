"""Chrome-trace exporter: structure, clock domains and byte-determinism.

The golden test runs the pipeline-4gpu preset twice end-to-end and demands
byte-identical trace files — the exporter's ordering, float formatting and
the simulated substrate itself must all be deterministic for the trace to
be a trustworthy artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Engine, RunSpec
from repro.api.cli import PRESETS
from repro.telemetry import SpanTracer, TraceTrack, build_chrome_trace


def _pipeline_spec() -> RunSpec:
    # The CLI preset, shrunk: identical topology (4 pipeline stages), fewer
    # snapshots/epochs so two full runs stay fast.
    data = json.loads(json.dumps(PRESETS["pipeline-4gpu"]))
    data.update(num_snapshots=8, epochs=2)
    return RunSpec.from_dict(data)


def _run_and_export(tmp_path, name: str) -> tuple[bytes, dict]:
    engine = Engine.from_spec(_pipeline_spec())
    engine.run()
    path = tmp_path / name
    doc = engine.export_trace(path)
    return path.read_bytes(), doc


class TestGoldenDeterminism:
    def test_two_runs_byte_identical(self, tmp_path):
        first, doc = _run_and_export(tmp_path, "a.json")
        second, _ = _run_and_export(tmp_path, "b.json")
        assert first == second
        # and the file is strict JSON that parses back to the returned doc
        assert json.loads(first.decode()) == doc

    def test_structure_of_pipeline_trace(self, tmp_path):
        _, doc = _run_and_export(tmp_path, "c.json")
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]

        # One process track per device plus the run-lifecycle track.
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert {"run", "gpu0", "gpu1", "gpu2", "gpu3"} <= process_names

        # Device events carry their timeline kind as the category.
        cats = {e.get("cat") for e in spans}
        assert "kernel" in cats
        assert "collective" in cats
        # The 1F1B schedule stalls late stages: bubbles are first-class spans.
        assert "bubble" in cats
        # Lifecycle spans (train phase, epochs, frames) ride the run track.
        assert "phase" in cats and "epoch" in cats and "frame" in cats

        # Timestamps are microseconds and non-negative; durations finite.
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in spans)

        # Bubble spans land on a device pid, not the run track.
        bubble_pids = {e["pid"] for e in spans if e.get("cat") == "bubble"}
        assert bubble_pids and 0 not in bubble_pids

    def test_prefetch_spans_ride_device_prefetch_threads(self, tmp_path):
        """Datapipe stage spans (the preset prefetches at depth 2) get their
        own thread on the owning device's track, never the run track."""
        _, doc = _run_and_export(tmp_path, "e.json")
        events = doc["traceEvents"]
        prefetch = [e for e in events if e.get("cat") == "prefetch"]
        assert prefetch
        stages = {e["name"].split("_")[1] for e in prefetch}
        assert stages == {"slice", "gather", "pin", "h2d"}
        pids = {e["pid"] for e in prefetch}
        assert 0 not in pids
        assert len(pids) > 1  # every pipeline stage device prefetches
        # All prefetch spans share the reserved per-device thread name.
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {
            thread_names[(e["pid"], e["tid"])] for e in prefetch
        } == {"prefetch"}


class TestBuildChromeTrace:
    def test_open_spans_are_excluded(self):
        tracer = SpanTracer()
        tracer.begin("left_open", at=0.0)
        doc = build_chrome_trace([], spans=tracer.spans)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_serve_domain_is_offset_past_train_extent(self):
        tracer = SpanTracer()
        tracer.record("train_phase", 0.0, 2.0, category="phase", domain="train")
        tracer.record("serve_phase", 0.0, 1.0, category="phase", domain="serve")
        doc = build_chrome_trace([], spans=tracer.spans)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["train_phase"]["ts"] == 0
        # serve clock starts where the train extent ends: 2 s -> 2e6 us
        assert by_name["serve_phase"]["ts"] == pytest.approx(2e6)

    def test_metadata_is_embedded_sorted(self):
        doc = build_chrome_trace([], metadata={"b": 1, "a": 2})
        assert list(doc["metadata"]) == ["a", "b"]

    def test_nonfinite_attrs_serialize(self):
        tracer = SpanTracer()
        tracer.record("s", 0.0, 1.0, loss=float("nan"))
        doc = build_chrome_trace([], spans=tracer.spans)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert isinstance(event["args"]["loss"], str)  # repr, not bare NaN
        json.dumps(doc, allow_nan=False)  # strict JSON round-trips

    def test_track_threads_follow_resource_order(self):
        from repro.gpu.device import SimulatedGPU

        gpu = SimulatedGPU()
        gpu.transfer_h2d(1024, label="x")
        doc = build_chrome_trace([TraceTrack("gpu0", gpu.timeline)])
        thread_meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
        ]
        names = {e["args"]["name"] for e in thread_meta}
        assert "pcie_h2d" in names
