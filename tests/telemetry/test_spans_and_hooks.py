"""Unit tests for the span tracer and the callback/hook layer."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    CALLBACK_REGISTRY,
    CallbackList,
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    TelemetryCallback,
    TracingCallback,
)
from repro.telemetry.hooks import HOOK_NAMES, NULL_CALLBACK


class TestSpanTracer:
    def test_nested_spans_track_depth(self):
        t = SpanTracer()
        t.begin("train", at=0.0)
        t.begin("epoch_0", at=0.0, category="epoch")
        t.end("epoch_0", at=1.0)
        t.end("train", at=2.0)
        spans = {s.name: s for s in t.spans}
        assert spans["train"].depth == 0
        assert spans["epoch_0"].depth == 1
        assert spans["train"].duration == 2.0

    def test_end_unknown_span_raises(self):
        t = SpanTracer()
        with pytest.raises(ValueError):
            t.end("nope", at=1.0)

    def test_end_closes_deeper_open_spans(self):
        t = SpanTracer()
        t.begin("outer", at=0.0)
        t.begin("inner", at=0.5)
        t.end("outer", at=2.0)  # inner left open: closed at the same instant
        spans = {s.name: s for s in t.spans}
        assert spans["inner"].closed and spans["inner"].end == 2.0
        assert t.open_depth == 0

    def test_record_leaf_span_clamps_end(self):
        t = SpanTracer()
        t.record("frame_0", 1.0, 0.5, category="frame")
        (span,) = t.spans
        assert span.end == 1.0  # end < start clamps to zero width

    def test_extent_per_domain(self):
        t = SpanTracer()
        t.record("a", 0.0, 2.0, domain="train")
        t.record("b", 0.0, 5.0, domain="serve")
        assert t.extent("train") == 2.0
        assert t.extent("serve") == 5.0
        assert t.extent() == 5.0
        assert SpanTracer().extent() == 0.0

    def test_close_all_closes_every_open_span(self):
        t = SpanTracer()
        t.begin("a", at=0.0)
        t.begin("b", at=1.0)
        t.close_all(at=3.0)
        assert all(s.closed for s in t.spans)
        assert t.open_depth == 0

    def test_by_category(self):
        t = SpanTracer()
        t.record("f", 0.0, 1.0, category="frame")
        t.record("g", 0.0, 1.0, category="epoch")
        assert [s.name for s in t.by_category("frame")] == ["f"]


class TestCallbackList:
    def test_fans_out_to_every_callback(self):
        calls = []

        class Probe(TelemetryCallback):
            def __init__(self, tag):
                self.tag = tag

            def on_epoch_start(self, epoch, at):
                calls.append((self.tag, epoch))

        fan = CallbackList().add(Probe("a")).add(Probe("b"))
        fan.on_epoch_start(3, 0.0)
        assert calls == [("a", 3), ("b", 3)]

    def test_covers_every_hook_name(self):
        fan = CallbackList()
        for name in HOOK_NAMES:
            assert callable(getattr(fan, name))
            assert callable(getattr(NULL_CALLBACK, name))

    def test_tracing_callback_builds_spans(self):
        tracer = SpanTracer()
        cb = TracingCallback(tracer)
        cb.on_phase_start("train", 0.0)
        cb.on_epoch_start(0, 0.0)
        cb.on_frame(0, 0, 0.0, 0.5, loss=1.0)
        cb.on_epoch_end(0, None, 0.0, 1.0)
        cb.on_phase_end("train", 1.0)
        names = [s.name for s in tracer.spans]
        assert "train" in names and "epoch_0" in names and "frame_0" in names


class TestTelemetryRuntime:
    def test_unknown_callback_name_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(callbacks=("nope",))

    def test_known_names_match_registry(self):
        Telemetry(callbacks=tuple(CALLBACK_REGISTRY))  # does not raise

    def test_disabled_telemetry_collects_nothing(self):
        tel = Telemetry(enabled=False)
        assert isinstance(tel.registry, MetricsRegistry)
        assert tel.collect(None) == {}

    def test_from_spec_none_is_disabled(self):
        assert Telemetry.from_spec(None).enabled is False
