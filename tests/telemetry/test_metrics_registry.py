"""Unit tests for the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import math

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_starts_as_nan_not_zero(self):
        # An unset gauge must not read as a measured zero.
        g = Gauge("depth")
        assert math.isnan(g.value)

    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4.0)
        g.add(1.5)
        assert g.value == 5.5

    def test_add_on_unset_gauge_treats_nan_as_zero(self):
        g = Gauge("depth")
        g.add(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_empty_percentiles_are_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.percentile(50.0))
        assert math.isnan(h.mean)
        assert h.count == 0

    def test_percentile_bounds_checked(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)
        with pytest.raises(ValueError):
            h.percentile(-0.5)

    def test_percentiles_interpolate(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 4.0
        assert h.percentile(50.0) == pytest.approx(2.5)
        assert h.mean == pytest.approx(2.5)
        assert h.total == pytest.approx(10.0)

    def test_snapshot_expands_to_flat_keys(self):
        h = Histogram("lat")
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["count"] == 1.0
        assert snap["sum"] == 2.0
        assert snap["mean"] == 2.0
        assert snap["p50"] == 2.0
        assert snap["p99"] == 2.0


class TestMetricsRegistry:
    def test_empty_registry_snapshot_is_empty(self):
        reg = MetricsRegistry()
        assert reg.snapshot() == {}
        assert len(reg) == 0

    def test_double_register_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("train.frames")
        b = reg.counter("train.frames")
        assert a is b
        a.inc()
        assert b.value == 1.0
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_empty_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")

    def test_snapshot_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.depth").set(1.0)
        reg.histogram("c.lat").observe(3.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["b.count"] == 2.0
        assert snap["a.depth"] == 1.0
        assert snap["c.lat.count"] == 1.0
        assert snap["c.lat.p99"] == 3.0

    def test_set_gauges_with_prefix(self):
        reg = MetricsRegistry()
        reg.set_gauges({"kernel": 1.0, "h2d": 0.5}, prefix="train.breakdown.")
        snap = reg.snapshot()
        assert snap["train.breakdown.kernel"] == 1.0
        assert snap["train.breakdown.h2d"] == 0.5

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.gauge("y")
        assert "x" in reg and "y" in reg and "z" not in reg
        assert reg.names() == ["x", "y"]

    def test_reset_clears_instruments(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {}
