"""Tests for the baseline trainers, the PiPAD trainer and the results records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    METHOD_ORDER,
    PyGTAsyncTrainer,
    PyGTGeSpMMTrainer,
    PyGTReuseTrainer,
    PyGTTrainer,
    TrainerConfig,
    TrainingResult,
    list_methods,
    make_trainer,
)
from repro.core import PiPADConfig, PiPADTrainer


class TestTrainerConfig:
    def test_defaults_valid(self):
        TrainerConfig()

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(frame_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(optimizer="rmsprop")

    def test_method_registry(self):
        assert list_methods() == METHOD_ORDER
        with pytest.raises(KeyError):
            make_trainer("nope", None)


class TestBaselineTrainers:
    def test_pygt_trains_and_reports(self, small_graph, trainer_config):
        result = PyGTTrainer(small_graph, trainer_config).train()
        assert isinstance(result, TrainingResult)
        assert result.method == "PyGT"
        assert result.simulated_seconds > 0
        assert result.epochs == trainer_config.epochs
        assert len(result.epoch_metrics) == trainer_config.epochs
        assert np.isfinite(result.final_loss)
        assert 0.0 < result.gpu_utilization <= 1.0
        assert result.kernel_launches > 0

    def test_flag_matrix(self):
        assert PyGTTrainer.async_transfer is False and PyGTTrainer.use_reuse is False
        assert PyGTAsyncTrainer.async_transfer is True
        assert PyGTReuseTrainer.use_reuse is True
        assert PyGTGeSpMMTrainer.kernel_name == "gespmm"
        assert PyGTGeSpMMTrainer.adjacency_format == "csr+csc"

    def test_reuse_reduces_steady_state_time(self, small_graph, trainer_config):
        async_result = PyGTAsyncTrainer(small_graph, trainer_config).train()
        reuse_result = PyGTReuseTrainer(small_graph, trainer_config).train()
        assert reuse_result.steady_epoch_seconds <= async_result.steady_epoch_seconds * 1.01

    def test_all_methods_same_loss(self, small_graph, trainer_config):
        """All execution strategies compute the same math, so losses agree."""
        losses = {}
        for method in ("pygt", "pygt-a", "pygt-r", "pygt-g"):
            losses[method] = make_trainer(method, small_graph, trainer_config).train().final_loss
        reference = losses["pygt"]
        for method, loss in losses.items():
            assert loss == pytest.approx(reference, rel=1e-3), method

    def test_evaluate_returns_finite_mse(self, small_graph, trainer_config):
        trainer = PyGTTrainer(small_graph, trainer_config)
        trainer.train(epochs=1)
        assert np.isfinite(trainer.evaluate())

    def test_custom_cost_scale_respected(self, small_graph):
        config = TrainerConfig(model="tgcn", frame_size=4, epochs=1, cost_scale=50.0)
        trainer = PyGTTrainer(small_graph, config)
        assert trainer.scale == 50.0

    def test_sync_transfer_slower_than_async(self, small_graph):
        config = TrainerConfig(model="tgcn", frame_size=4, epochs=2, cost_scale=500.0)
        sync = PyGTTrainer(small_graph, config).train()
        async_ = PyGTAsyncTrainer(small_graph, config).train()
        assert async_.steady_epoch_seconds < sync.steady_epoch_seconds


class TestPiPADTrainer:
    def test_trains_and_matches_baseline_loss(self, small_graph, trainer_config):
        baseline = PyGTTrainer(small_graph, trainer_config).train()
        pipad = PiPADTrainer(small_graph, trainer_config, PiPADConfig(preparing_epochs=1)).train()
        assert pipad.final_loss == pytest.approx(baseline.final_loss, rel=1e-3)
        assert pipad.method == "PiPAD"

    def test_faster_than_pygt_in_steady_state(self, small_graph):
        config = TrainerConfig(model="tgcn", frame_size=4, epochs=3, cost_scale=200.0)
        baseline = PyGTTrainer(small_graph, config).train()
        pipad = PiPADTrainer(small_graph, config, PiPADConfig(preparing_epochs=1)).train()
        assert pipad.steady_epoch_seconds < baseline.steady_epoch_seconds

    def test_tuner_decisions_recorded(self, small_graph, trainer_config):
        trainer = PiPADTrainer(small_graph, trainer_config, PiPADConfig(preparing_epochs=1))
        trainer.train()
        decisions = trainer.tuning_decisions
        assert len(decisions) == trainer.frames.num_frames
        assert all(d.s_per >= 1 for d in decisions)
        assert set(trainer.chosen_s_per()) == {f.index for f in trainer.frames}

    def test_fixed_s_per_respected(self, small_graph, trainer_config):
        trainer = PiPADTrainer(
            small_graph, trainer_config, PiPADConfig(preparing_epochs=1, fixed_s_per=2)
        )
        trainer.train()
        assert set(trainer.chosen_s_per().values()) == {2}

    def test_max_s_per_metadata_caps_candidates(self, small_graph, trainer_config):
        small_graph.metadata["max_s_per"] = 2
        try:
            trainer = PiPADTrainer(small_graph, trainer_config, PiPADConfig(preparing_epochs=1))
            assert max(trainer.tuner.candidates) <= 2
        finally:
            small_graph.metadata.pop("max_s_per")

    def test_reuse_statistics_reported(self, small_graph, trainer_config):
        result = PiPADTrainer(
            small_graph, trainer_config, PiPADConfig(preparing_epochs=1)
        ).train()
        assert result.extras.get("cpu_hits", 0) + result.extras.get("gpu_hits", 0) > 0
        assert "mean_s_per" in result.extras

    def test_reuse_can_be_disabled(self, small_graph, trainer_config):
        trainer = PiPADTrainer(
            small_graph,
            trainer_config,
            PiPADConfig(preparing_epochs=1, enable_inter_frame_reuse=False),
        )
        result = trainer.train()
        assert trainer.cache is None
        assert "cpu_hits" not in result.extras

    def test_ablations_do_not_change_numerics(self, small_graph, trainer_config):
        reference = PiPADTrainer(
            small_graph, trainer_config, PiPADConfig(preparing_epochs=1)
        ).train()
        for ablated in (
            PiPADConfig(preparing_epochs=1, enable_weight_reuse=False),
            PiPADConfig(preparing_epochs=1, use_sliced_csr=False),
            PiPADConfig(preparing_epochs=1, enable_pipeline=False),
            PiPADConfig(preparing_epochs=1, enable_inter_frame_reuse=False),
        ):
            result = PiPADTrainer(small_graph, trainer_config, ablated).train()
            assert result.final_loss == pytest.approx(reference.final_loss, rel=1e-3)

    def test_pipeline_ablation_is_slower(self, small_graph):
        config = TrainerConfig(model="tgcn", frame_size=4, epochs=3, cost_scale=500.0)
        piped = PiPADTrainer(small_graph, config, PiPADConfig(preparing_epochs=1)).train()
        serial = PiPADTrainer(
            small_graph, config, PiPADConfig(preparing_epochs=1, enable_pipeline=False)
        ).train()
        assert serial.steady_epoch_seconds >= piped.steady_epoch_seconds

    def test_zero_preparing_epochs_supported(self, small_graph, trainer_config):
        result = PiPADTrainer(
            small_graph, trainer_config, PiPADConfig(preparing_epochs=0)
        ).train(epochs=1)
        assert result.simulated_seconds > 0


class TestResults:
    def test_speedup_and_steady_state(self, small_graph, trainer_config):
        result = PyGTTrainer(small_graph, trainer_config).train()
        assert result.speedup_over(result) == pytest.approx(1.0)
        assert result.steady_epoch_seconds > 0
        assert result.per_epoch_seconds == pytest.approx(
            result.simulated_seconds / result.epochs
        )
        assert len(result.loss_curve()) == result.epochs
