"""Tests for the interconnect cost model and the multi-device group."""

from __future__ import annotations

import pytest

from repro.gpu import (
    COMM_STREAM,
    RESOURCE_PEER_LINK,
    DeviceGroup,
    Interconnect,
    LinkSpec,
    NVLINK,
    PCIE_PEER,
    SimulatedGPU,
)


class TestInterconnect:
    def test_peer_cost_symmetry(self):
        """Acceptance invariant: collective/peer costs are endpoint-symmetric."""
        ic = Interconnect(6)
        for src in range(6):
            for dst in range(6):
                assert ic.peer_seconds(1e6, src, dst) == ic.peer_seconds(1e6, dst, src)

    def test_self_transfer_free(self):
        assert Interconnect(4).peer_seconds(1e9, 2, 2) == 0.0

    def test_ring_distance_wraps(self):
        ic = Interconnect(8)
        assert ic.ring_distance(0, 7) == 1
        assert ic.ring_distance(0, 4) == 4
        assert ic.ring_distance(2, 5) == 3

    def test_all_reduce_follows_ring_formula(self):
        ic = Interconnect(4, LinkSpec(bandwidth_gbs=10.0, latency_us=0.0))
        # 2(K-1) steps of N/K bytes at 10 GB/s.
        expected = 6 * (1e9 / 4) / 10e9
        assert ic.all_reduce_seconds(1e9) == pytest.approx(expected)

    def test_all_reduce_single_device_free(self):
        assert Interconnect(1).all_reduce_seconds(1e9) == 0.0
        assert Interconnect(4).all_reduce_seconds(0.0) == 0.0

    def test_all_gather_cheaper_than_all_reduce(self):
        ic = Interconnect(4)
        assert ic.all_gather_seconds(1e6) < ic.all_reduce_seconds(4e6)

    def test_nvlink_faster_than_pcie(self):
        nv = Interconnect(4, kind="nvlink")
        pcie = Interconnect(4, kind="pcie")
        assert nv.all_reduce_seconds(1e8) < pcie.all_reduce_seconds(1e8)
        assert NVLINK.bandwidth_gbs > PCIE_PEER.bandwidth_gbs

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            Interconnect(4, kind="infiniband")
        with pytest.raises(ValueError):
            Interconnect(4).all_reduce_seconds(-1.0)
        with pytest.raises(ValueError):
            Interconnect(4).peer_seconds(1.0, 0, 9)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_gbs=-1.0, latency_us=0.0)


class TestDeviceGroup:
    def test_collectives_synchronize_all_devices(self, device_group):
        # Make device 2 busy so the collective must wait for it.
        device_group[2].host_op(5.0, label="busy")
        ops = device_group.all_reduce(1e6)
        assert len(ops) == device_group.num_devices
        starts = {op.start for op in ops}
        ends = {op.end for op in ops}
        assert len(starts) == 1 and len(ends) == 1
        assert ops[0].start == 0.0  # host op is on the CPU resource, not comm

    def test_collective_waits_for_dependencies(self, device_group):
        busy = device_group[1].host_op(3.0, label="grad_compute")
        deps = [None, [busy], None, None]
        ops = device_group.all_reduce(1e6, depends_on=deps)
        assert all(op.start == pytest.approx(3.0) for op in ops)

    def test_cross_device_dependency_edges(self, device_group):
        """An op of one device can gate an op of another (shared clock)."""
        producer = device_group[0].host_op(2.0, label="produce")
        consumer = device_group[3].host_op(
            1.0, label="consume", depends_on=[producer]
        )
        assert consumer.start >= producer.end

    def test_collectives_occupy_comm_engine(self, device_group):
        ops = device_group.all_gather(1e6)
        for op in ops:
            assert op.resource == RESOURCE_PEER_LINK
            assert op.stream == COMM_STREAM
            assert op.kind == "collective"

    def test_back_to_back_collectives_serialize(self, device_group):
        first = device_group.all_reduce(1e6)
        second = device_group.all_reduce(1e6)
        assert second[0].start >= first[0].end

    def test_halo_exchange_bounded_by_heaviest_device(self, device_group):
        light = device_group.interconnect.halo_exchange_seconds(1e5)
        ops = device_group.halo_exchange([1e5, 4e6, 1e5, 0.0])
        heavy = device_group.interconnect.halo_exchange_seconds(4e6)
        assert ops[0].duration == pytest.approx(heavy)
        assert heavy > light

    def test_halo_exchange_requires_per_device_bytes(self, device_group):
        with pytest.raises(ValueError):
            device_group.halo_exchange([1.0, 2.0])

    def test_barrier_costs_nothing_but_aligns(self, device_group):
        device_group[1].host_op(4.0, label="straggler")
        ops = device_group.barrier()
        assert all(op.duration == 0.0 for op in ops)
        assert all(op.start == pytest.approx(4.0) for op in ops)

    def test_single_device_collectives_are_free(self):
        group = DeviceGroup(1)
        (op,) = group.all_reduce(1e9)
        assert op.duration == 0.0

    def test_makespan_and_breakdown(self, device_group):
        device_group[0].host_op(1.0, label="a")
        device_group.all_reduce(1e6)
        assert device_group.makespan() >= 1.0
        breakdown = device_group.breakdown()
        assert breakdown["collective_all_reduce"] > 0
        assert breakdown["makespan"] == device_group.makespan()

    def test_breakdown_counts_each_collective_once(self, device_group):
        """Regression: summing the K identical per-device collective ops
        overstated communication time K-fold vs the collective_* entries."""
        device_group.all_reduce(1e6)
        device_group.all_gather(1e6)
        breakdown = device_group.breakdown()
        assert breakdown["collective"] == pytest.approx(
            breakdown["collective_all_reduce"] + breakdown["collective_all_gather"]
        )
        assert breakdown["collective"] == pytest.approx(
            sum(device_group.collective_seconds.values())
        )

    def test_wraps_existing_devices(self):
        lead = SimulatedGPU()
        group = DeviceGroup(devices=[lead, SimulatedGPU()])
        assert group.lead is lead
        assert len(group) == 2

    def test_reset_clears_all_timelines(self, device_group):
        device_group.all_reduce(1e6)
        device_group.reset()
        assert device_group.makespan() == 0.0
        assert device_group.collective_seconds == {}

    def test_mismatched_deps_rejected(self, device_group):
        with pytest.raises(ValueError):
            device_group.all_reduce(1.0, depends_on=[None])


class TestPeerSend:
    def test_send_costs_the_peer_transfer(self, device_group):
        send_op, recv_op = device_group.send(0, 1, 1e6)
        expected = device_group.interconnect.peer_seconds(1e6, 0, 1)
        assert send_op.duration == pytest.approx(expected)
        assert recv_op.duration == pytest.approx(expected)

    def test_send_and_recv_cover_the_same_interval(self, device_group):
        send_op, recv_op = device_group.send(2, 3, 1e6)
        assert (send_op.start, send_op.end) == (recv_op.start, recv_op.end)
        assert send_op.attrs["peer"] == 3 and recv_op.attrs["peer"] == 2

    def test_send_lands_on_both_peer_links(self, device_group):
        for op in device_group.send(0, 2, 1e6):
            assert op.resource == RESOURCE_PEER_LINK
            assert op.stream == COMM_STREAM
            assert op.kind == "collective"
            assert op.attrs["collective"] == "peer_transfer"

    def test_send_waits_for_dependencies(self, device_group):
        producer = device_group[0].host_op(2.0, label="state_compute")
        _, recv_op = device_group.send(0, 1, 1e6, depends_on=[producer])
        assert recv_op.start >= producer.end

    def test_busy_endpoint_link_delays_the_send(self, device_group):
        first_send, _ = device_group.send(0, 1, 1e8)
        # A disjoint pair is free to go immediately...
        other_send, _ = device_group.send(2, 3, 1e6)
        assert other_send.start == 0.0
        # ...but a send sharing an endpoint queues behind the busy link.
        second_send, _ = device_group.send(1, 2, 1e6)
        assert second_send.start >= first_send.end

    def test_send_does_not_involve_third_devices(self, device_group):
        device_group.send(0, 1, 1e6)
        assert device_group[2].timeline.ops == []
        assert device_group[3].timeline.ops == []

    def test_send_accumulates_peer_transfer_seconds(self, device_group):
        device_group.send(0, 1, 1e6)
        device_group.send(1, 0, 1e6)
        expected = 2 * device_group.interconnect.peer_seconds(1e6, 0, 1)
        assert device_group.collective_seconds["peer_transfer"] == pytest.approx(expected)
        assert device_group.breakdown()["collective_peer_transfer"] == pytest.approx(
            expected
        )

    def test_send_rejects_bad_endpoints(self, device_group):
        with pytest.raises(ValueError, match="must differ"):
            device_group.send(1, 1, 1.0)
        with pytest.raises(ValueError, match="out of range"):
            device_group.send(0, 9, 1.0)
        with pytest.raises(ValueError, match="out of range"):
            device_group.send(-1, 0, 1.0)
