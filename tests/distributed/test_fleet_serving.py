"""Tests for the fleet serving engine: routing, admission, autoscale, parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    FleetConfig,
    FleetServingEngine,
    build_fleet_serving_engine,
    build_sharded_serving_engine,
)
from repro.memory import MemoryConfig
from repro.nn import build_model
from repro.serving import ServingConfig, synthesize_serving_trace
from repro.serving.scheduler import _build_serving_scheduler
from repro.telemetry.hooks import TelemetryCallback


def make_fleet(graph, *, fleet=None, model_seed=0, **config_kwargs):
    defaults = dict(window=4, max_batch_requests=4, max_delay_ms=0.5)
    defaults.update(config_kwargs)
    model = build_model("tgcn", graph.feature_dim, 8, seed=model_seed)
    return build_fleet_serving_engine(
        graph, model, fleet or FleetConfig(num_shards=3), ServingConfig(**defaults)
    )


def shard_interior_node(engine: FleetServingEngine, shard: int) -> int:
    """A node id strictly owned by ``shard`` under the engine's plan."""
    return int(engine.boundaries[shard])


class PhaseRecorder(TelemetryCallback):
    def __init__(self) -> None:
        self.phases = []

    def on_phase_start(self, phase, at):
        self.phases.append(("start", phase, at))

    def on_phase_end(self, phase, at):
        self.phases.append(("end", phase, at))


class TestFleetRouting:
    def test_requests_route_to_owner_shard(self, small_graph):
        engine = make_fleet(
            small_graph, fleet=FleetConfig(num_shards=3, min_replicas=3)
        )
        for shard in range(3):
            lo, hi = int(engine.boundaries[shard]), int(engine.boundaries[shard + 1])
            gid = engine.submit(range(lo, hi), at=0.0)
            assert engine.route_of(gid)[0] == shard
            assert engine.owner_of(lo) == shard

    def test_majority_owner_wins(self, small_graph):
        engine = make_fleet(
            small_graph, fleet=FleetConfig(num_shards=3, min_replicas=3)
        )
        two_here = [shard_interior_node(engine, 1), shard_interior_node(engine, 1) ]
        one_there = [shard_interior_node(engine, 0)]
        gid = engine.submit(two_here + one_there, at=0.0)
        assert engine.route_of(gid)[0] == 1

    def test_owner_tie_breaks_by_queue_depth(self, small_graph):
        engine = make_fleet(
            small_graph,
            fleet=FleetConfig(num_shards=2, min_replicas=2, admission_limit=32),
            max_batch_requests=32,
            max_delay_ms=50.0,
        )
        # Load shard 0's queue without pumping.
        for _ in range(3):
            engine.submit([shard_interior_node(engine, 0)], at=0.0)
        assert engine.replicas[0].batcher.pending == 3
        # One node from each shard: ownership ties, lower queue depth wins.
        tied = [shard_interior_node(engine, 0), shard_interior_node(engine, 1)]
        gid = engine.submit(tied, at=0.0)
        assert engine.route_of(gid)[0] == 1

    def test_replicas_share_one_store(self, small_graph):
        engine = make_fleet(small_graph)
        assert all(replica.store is engine.store for replica in engine.replicas)
        # One delta application advances every replica's view at once.
        trace = synthesize_serving_trace(small_graph[-1], 30, seed=2)
        delta = next(e.delta for e in trace if e.kind == "delta")
        before = engine.store.deltas_applied
        engine.ingest(delta, at=0.0)
        assert engine.store.deltas_applied == before + 1
        versions = {tuple(r.store.window_versions()) for r in engine.replicas}
        assert len(versions) == 1


class TestAdmissionControl:
    def make_admission_fleet(self, graph, limit=2):
        return make_fleet(
            graph,
            fleet=FleetConfig(num_shards=2, min_replicas=1, admission_limit=limit),
            max_batch_requests=32,
            max_delay_ms=50.0,
        )

    def test_sheds_requests_above_queue_limit(self, small_graph):
        engine = self.make_admission_fleet(small_graph, limit=2)
        ids = [engine.submit([1], at=0.0) for _ in range(5)]
        assert ids[:2] == [0, 1]
        assert ids[2:] == [None, None, None]
        assert engine.rejected_requests == 3
        assert engine.replicas[0].batcher.pending == 2

    def test_global_ids_stay_contiguous_after_rejections(self, small_graph):
        """Shed requests must not burn global ids or poison the id mapping."""
        engine = self.make_admission_fleet(small_graph, limit=2)
        admitted = []
        for k in range(6):
            gid = engine.submit([k], at=0.0)
            if gid is not None:
                admitted.append(gid)
            if k == 3:  # drain so later submissions are admitted again
                engine.pump(0.0, force=True)
        assert admitted == list(range(len(admitted)))
        for gid in admitted:
            shard, local = engine.route_of(gid)
            assert engine._to_global(shard, local) == gid
        results = engine.pump(0.0, force=True)
        predicted = set()
        for result in results:
            predicted.update(result.predictions)
        assert predicted <= set(admitted)
        report = engine.report()
        assert report.extras["rejected_requests"] == float(engine.rejected_requests)
        assert report.extras["admitted_requests"] == float(len(admitted))
        assert report.metrics.num_requests == len(admitted)

    def test_no_shedding_below_limit(self, small_graph):
        engine = self.make_admission_fleet(small_graph, limit=8)
        ids = [engine.submit([k], at=0.0) for k in range(5)]
        assert None not in ids
        assert engine.rejected_requests == 0


class TestAdmissionDepth:
    """The maintained depth counter must track queued + in-flight exactly."""

    def test_depth_counts_queued_then_in_flight(self, small_graph):
        engine = make_fleet(
            small_graph,
            fleet=FleetConfig(num_shards=2, min_replicas=1, admission_limit=8),
            max_batch_requests=32,
            max_delay_ms=50.0,
        )
        assert engine.queue_depth(0, 0.0) == 0
        for _ in range(3):
            engine.submit([1], at=0.0)
        assert engine.queue_depth(0, 0.0) == 3  # all still queued
        results = engine.pump(0.0, force=True)
        done = max(r.completion_time for r in results)
        assert done > 0.0
        # Executed but not yet complete on the simulated clock: in flight.
        assert engine.queue_depth(0, 0.0) == 3
        # Past the completion time the backlog fully drains.
        assert engine.queue_depth(0, done) == 0

    def test_rejected_requests_never_enter_the_depth(self, small_graph):
        engine = make_fleet(
            small_graph,
            fleet=FleetConfig(num_shards=2, min_replicas=1, admission_limit=2),
            max_batch_requests=32,
            max_delay_ms=50.0,
        )
        for _ in range(5):
            engine.submit([1], at=0.0)
        assert engine.rejected_requests == 3
        assert engine.queue_depth(0, 0.0) == 2

    def test_completions_reopen_admission(self, small_graph):
        engine = make_fleet(
            small_graph,
            fleet=FleetConfig(num_shards=2, min_replicas=1, admission_limit=2),
            max_batch_requests=32,
            max_delay_ms=50.0,
        )
        assert engine.submit([1], at=0.0) is not None
        assert engine.submit([1], at=0.0) is not None
        assert engine.submit([1], at=0.0) is None  # at the limit
        results = engine.pump(0.0, force=True)
        done = max(r.completion_time for r in results)
        # Once the batch completes the depth is back under the limit.
        assert engine.submit([1], at=done) is not None

    def test_depth_matches_record_scan(self, small_graph):
        """Cross-check the counter against the O(records) definition."""
        engine = make_fleet(
            small_graph,
            fleet=FleetConfig(num_shards=2, min_replicas=1, admission_limit=64),
            max_batch_requests=4,
            max_delay_ms=0.5,
        )
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=4)
        engine.run_trace(trace)
        now = max(r.device.elapsed_seconds() for r in engine.replicas)
        for shard, replica in enumerate(engine.replicas):
            scanned = replica.batcher.pending + sum(
                1 for rec in replica.metrics.requests if rec.completion_time > now
            )
            assert engine.queue_depth(shard, now) == scanned


class TestAutoscale:
    def pressure_fleet(self, graph, **fleet_kwargs):
        defaults = dict(
            num_shards=3,
            min_replicas=1,
            admission_limit=64,
            slo_p99_ms=1e-6,
            scale_window=4,
            scale_cooldown=2,
        )
        defaults.update(fleet_kwargs)
        return make_fleet(graph, fleet=FleetConfig(**defaults))

    def test_scales_up_under_slo_pressure(self, small_graph):
        engine = self.pressure_fleet(small_graph)
        trace = synthesize_serving_trace(
            small_graph[-1], 60, seed=5, mean_interarrival_ms=0.05
        )
        report = engine.run_trace(trace)
        assert engine.active_replicas > 1
        assert any(e.direction == "up" for e in engine.scale_events)
        assert report.extras["scale_up_events"] >= 1.0
        assert report.extras["active_replicas"] == float(engine.active_replicas)

    def test_scale_events_emitted_through_hooks(self, small_graph):
        engine = self.pressure_fleet(small_graph)
        recorder = PhaseRecorder()
        engine.hooks = recorder
        trace = synthesize_serving_trace(
            small_graph[-1], 60, seed=5, mean_interarrival_ms=0.05
        )
        engine.run_trace(trace)
        scale_phases = [p for p in recorder.phases if p[1].startswith("fleet_scale_")]
        assert scale_phases, "no scale phase events reached the telemetry hooks"
        # Every scale event opens and closes its phase.
        starts = [p for p in scale_phases if p[0] == "start"]
        ends = [p for p in scale_phases if p[0] == "end"]
        assert len(starts) == len(ends) == len(engine.scale_events)

    def test_scales_down_when_latency_has_headroom(self, small_graph):
        engine = self.pressure_fleet(small_graph, slo_p99_ms=1e9)
        engine._active = 3  # as if a previous burst had scaled the pool up
        trace = synthesize_serving_trace(small_graph[-1], 60, seed=6)
        report = engine.run_trace(trace)
        assert engine.active_replicas < 3
        assert any(e.direction == "down" for e in engine.scale_events)
        assert report.extras["scale_down_events"] >= 1.0

    def test_pool_respects_ceiling_and_floor(self, small_graph):
        engine = self.pressure_fleet(small_graph, max_replicas=2)
        trace = synthesize_serving_trace(
            small_graph[-1], 80, seed=5, mean_interarrival_ms=0.05
        )
        engine.run_trace(trace)
        assert engine.active_replicas <= 2
        assert all(e.active_replicas <= 2 for e in engine.scale_events)

    def test_inactive_replicas_absorb_deltas(self, small_graph):
        engine = self.pressure_fleet(small_graph)  # only replica 0 active
        trace = synthesize_serving_trace(small_graph[-1], 30, seed=2)
        delta = next(e.delta for e in trace if e.kind == "delta")
        engine.ingest(delta, at=0.0)
        assert all(r.metrics.deltas_ingested == 1 for r in engine.replicas)

    def test_idle_fleet_returns_to_min_replicas(self, small_graph):
        """Regression: pump ticks alone must drive scale-down — a fleet that
        stops receiving submissions would otherwise stay scaled up forever."""
        engine = self.pressure_fleet(small_graph, slo_p99_ms=1e9)
        engine._active = 3  # as if a previous burst had scaled the pool up
        for k in range(4):  # seed the rolling p99 window
            engine.submit([k], at=0.0)
        engine.pump(0.0, force=True)
        now = max(r.device.elapsed_seconds() for r in engine.replicas)
        for tick in range(12):  # idle: pump ticks only, no submissions
            engine.pump(now + tick)
        assert engine.active_replicas == engine.fleet_config.min_replicas
        assert any(e.direction == "down" for e in engine.scale_events)


class TestHaloGather:
    def test_remote_rows_charge_a_gather(self, small_graph):
        engine = make_fleet(
            small_graph, fleet=FleetConfig(num_shards=2, min_replicas=2)
        )
        # Entirely local request: no halo traffic.
        engine.submit([shard_interior_node(engine, 0)], at=0.0)
        engine.pump(0.0, force=True)
        assert engine.halo_gather_batches == 0
        # Majority shard 0, one remote row: the batch pays a gather.
        spanning = [
            shard_interior_node(engine, 0),
            int(engine.boundaries[1]) - 1,
            shard_interior_node(engine, 1),
        ]
        gid = engine.submit(spanning, at=0.0)
        assert engine.route_of(gid)[0] == 0
        engine.pump(0.0, force=True)
        assert engine.halo_gather_batches == 1
        assert engine.halo_gather_bytes > 0
        report = engine.report()
        assert report.extras["halo_gather_bytes"] == pytest.approx(
            engine.halo_gather_bytes
        )
        assert report.extras["halo_gather_seconds"] > 0


class TestFleetReport:
    def test_zero_request_shard_keeps_nan_percentiles(self, small_graph):
        engine = make_fleet(
            small_graph, fleet=FleetConfig(num_shards=3, min_replicas=3)
        )
        # All traffic inside shard 0's range: shards 1 and 2 stay idle.
        for _ in range(4):
            engine.submit([shard_interior_node(engine, 0)], at=0.0)
        engine.pump(0.0, force=True)
        report = engine.report()
        assert report.extras["shard1_requests"] == 0.0
        assert report.extras["shard2_requests"] == 0.0
        assert np.isnan(engine.replicas[1].metrics.latency_percentile(99.0))
        assert np.isfinite(report.metrics.p99_latency)
        assert report.metrics.num_requests == 4

    def test_node_sharded_store_accounting(self, small_graph):
        engine = make_fleet(small_graph, fleet=FleetConfig(num_shards=3))
        report = engine.report()
        full = report.extras["fleet_store_bytes"]
        per_replica = report.extras["per_replica_store_bytes"]
        assert full == float(engine.store.window_bytes())
        # Node-sharding must beat full replication per replica (halo rows and
        # the compacted CSR keep it above exactly 1/K).
        assert per_replica < full
        shard_bytes = [report.extras[f"shard{s}_store_bytes"] for s in range(3)]
        assert np.mean(shard_bytes) == pytest.approx(per_replica)

    def test_prefetch_aggregates_surface(self, small_graph):
        engine = make_fleet(small_graph, fleet=FleetConfig(num_shards=2, min_replicas=2))
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=3)
        report = engine.run_trace(trace)
        assert report.extras["prefetch_depth"] == float(
            engine.replicas[0].data.prefetch_depth
        )
        assert report.extras["prefetch_host_seconds"] == pytest.approx(
            sum(r.prefetcher.stats()["prefetch_host_seconds"] for r in engine.replicas)
        )
        assert report.engine == "PiPAD-Fleet-x2"


class TestFleetFeatureCache:
    def test_replica_caches_scoped_to_owned_rows_and_reported(self, small_graph):
        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        engine = build_fleet_serving_engine(
            small_graph,
            model,
            FleetConfig(num_shards=2, min_replicas=2),
            ServingConfig(
                window=4, max_batch_requests=4, max_delay_ms=0.5, enable_reuse=False
            ),
            memory=MemoryConfig(
                feature_cache=True, gpu_budget_mb=1.0, pinned_budget_mb=1.0,
                block_rows=16,
            ),
        )
        for shard in range(2):
            replica = engine.replicas[shard]
            assert replica.feature_cache is not None
            assert replica._cache_lo == int(engine.boundaries[shard])
            assert replica._cache_hi == int(engine.boundaries[shard + 1])
        engine.submit([shard_interior_node(engine, 0)], at=0.0)
        engine.submit([shard_interior_node(engine, 1)], at=0.0)
        engine.pump(0.0, force=True)
        report = engine.report()
        assert report.extras["feature_cache_misses"] > 0
        assert 0.0 <= report.extras["feature_cache_hit_rate"] <= 1.0


class TestDeterminismAndParity:
    def test_run_trace_replay_is_deterministic(self, small_graph):
        """Golden-style: two identically built fleets replay one trace to
        byte-identical request records, rejections and scale decisions."""
        trace = synthesize_serving_trace(
            small_graph[-1], 60, seed=9, mean_interarrival_ms=0.05
        )
        fleet_cfg = dict(
            num_shards=3, min_replicas=1, admission_limit=3, slo_p99_ms=0.5,
            scale_window=4, scale_cooldown=2,
        )
        reports = []
        engines = []
        for _ in range(2):
            engine = make_fleet(
                small_graph,
                fleet=FleetConfig(**fleet_cfg),
                max_batch_requests=8,
                max_delay_ms=5.0,
            )
            reports.append(engine.run_trace(list(trace)))
            engines.append(engine)
        a, b = reports
        assert [
            (r.request_id, r.batch_id, r.arrival_time, r.completion_time)
            for r in a.metrics.requests
        ] == [
            (r.request_id, r.batch_id, r.arrival_time, r.completion_time)
            for r in b.metrics.requests
        ]
        assert engines[0].rejected_requests == engines[1].rejected_requests
        assert engines[0].scale_events == engines[1].scale_events
        assert a.simulated_seconds == b.simulated_seconds

    @pytest.mark.parametrize("enable_reuse", [False, True])
    def test_predictions_match_single_device(self, small_graph, enable_reuse):
        """Node-sharding, routing and halo gathers are scheduling-only: every
        admitted request's prediction rows match the single-device engine.

        With the reuse cache off the match is bit-identical.  With it on, the
        incremental delta patch depends on which session was warm when the
        delta landed (a pre-existing property of ``InferenceSession.refresh``,
        shared with the round-robin sharded engine), so the match is only
        up to float32 patch-vs-recompute rounding.
        """
        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        config = ServingConfig(
            window=4,
            max_batch_requests=4,
            max_delay_ms=0.5,
            enable_reuse=enable_reuse,
        )
        single = _build_serving_scheduler(small_graph, model, config)
        fleet = build_fleet_serving_engine(
            small_graph,
            model,
            FleetConfig(num_shards=3, min_replicas=3, admission_limit=1024),
            config,
        )
        trace = synthesize_serving_trace(small_graph[-1], 60, seed=13)
        single_preds, fleet_preds, pairs = {}, {}, []
        for event in sorted(trace, key=lambda e: e.time):
            for result in fleet.pump(event.time):
                fleet_preds.update(result.predictions)
            for result in single.pump(event.time):
                single_preds.update(result.predictions)
            if event.kind == "delta":
                fleet.ingest(event.delta, at=event.time)
                single.ingest(event.delta, at=event.time)
            else:
                pairs.append(
                    (
                        fleet.submit(event.node_ids, at=event.time),
                        single.submit(event.node_ids, at=event.time),
                    )
                )
        for result in fleet.pump(None, force=True):
            fleet_preds.update(result.predictions)
        for result in single.pump(None, force=True):
            single_preds.update(result.predictions)
        assert pairs and all(fid is not None for fid, _ in pairs)
        for fleet_id, single_id in pairs:
            if enable_reuse:
                np.testing.assert_allclose(
                    fleet_preds[fleet_id], single_preds[single_id], rtol=1e-5
                )
            else:
                np.testing.assert_array_equal(
                    fleet_preds[fleet_id], single_preds[single_id]
                )


class TestFleetValidation:
    def test_config_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_replicas"):
            FleetConfig(num_shards=2, min_replicas=3)
        with pytest.raises(ValueError, match="min_replicas"):
            FleetConfig(num_shards=4, max_replicas=5)
        with pytest.raises(ValueError, match="partition mode"):
            FleetConfig(num_shards=2, partition_mode="metis")
        with pytest.raises(ValueError):
            FleetConfig(num_shards=0)

    def test_replica_count_must_match_config(self, small_graph):
        engine = make_fleet(small_graph, fleet=FleetConfig(num_shards=2))
        with pytest.raises(ValueError, match="replicas were provided"):
            FleetServingEngine(engine.replicas, engine.store, FleetConfig(num_shards=3))

    def test_replicas_must_share_the_store(self, small_graph):
        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        sharded = build_sharded_serving_engine(small_graph, model, 2)
        with pytest.raises(ValueError, match="share one IncrementalSnapshotStore"):
            FleetServingEngine(
                sharded.replicas, sharded.replicas[0].store, FleetConfig(num_shards=2)
            )
