"""Tests for the data-parallel trainer and the sharded serving entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import TrainerConfig
from repro.core import (
    DistributedConfig,
    DistributedTrainer,
    PiPADConfig,
    PiPADTrainer,
)
from repro.distributed import build_sharded_serving_engine
from repro.nn import build_model
from repro.serving import synthesize_serving_trace


@pytest.fixture()
def dist_trainer_config():
    return TrainerConfig(model="tgcn", frame_size=4, epochs=3, cost_scale=2000.0, seed=0)


class TestDistributedTrainer:
    def test_numerics_identical_to_single_device(self, small_graph, trainer_config):
        """Sharding only changes the timing model, never the math."""
        single = PiPADTrainer(
            small_graph, trainer_config, PiPADConfig(preparing_epochs=1)
        ).train()
        sharded = DistributedTrainer(
            small_graph,
            trainer_config,
            PiPADConfig(preparing_epochs=1),
            DistributedConfig(num_devices=4),
        ).train()
        assert sharded.final_loss == single.final_loss
        assert sharded.method == "PiPAD-DP"

    def test_four_devices_beat_one(self, small_graph, dist_trainer_config):
        results = {}
        for devices in (1, 4):
            results[devices] = DistributedTrainer(
                small_graph,
                dist_trainer_config,
                PiPADConfig(preparing_epochs=1),
                DistributedConfig(num_devices=devices),
            ).train()
        assert (
            results[4].steady_epoch_seconds < results[1].steady_epoch_seconds
        )

    def test_collectives_reported(self, small_graph, dist_trainer_config):
        result = DistributedTrainer(
            small_graph,
            dist_trainer_config,
            PiPADConfig(preparing_epochs=1),
            DistributedConfig(num_devices=2),
        ).train()
        assert result.extras["num_devices"] == 2.0
        assert result.extras["all_reduce_seconds"] > 0
        assert result.extras["halo_exchange_seconds"] > 0
        assert result.extras["all_gather_seconds"] > 0
        assert result.breakdown["collective_all_reduce"] > 0

    def test_single_device_has_no_collectives(self, small_graph, trainer_config):
        result = DistributedTrainer(
            small_graph,
            trainer_config,
            PiPADConfig(preparing_epochs=1),
            DistributedConfig(num_devices=1),
        ).train()
        assert "all_reduce_seconds" not in result.extras
        assert result.extras["halo_feature_bytes"] == 0.0

    def test_result_aggregates_cover_the_whole_group(self, small_graph, dist_trainer_config):
        """Regression: category/launch/memory counters reported only the lead
        device's ~1/K shard while breakdown summed all devices."""
        trainer = DistributedTrainer(
            small_graph,
            dist_trainer_config,
            PiPADConfig(preparing_epochs=1),
            DistributedConfig(num_devices=4),
        )
        result = trainer.train()
        expected_category = {}
        for device in trainer.group:
            for cat, seconds in device.category_seconds().items():
                expected_category[cat] = expected_category.get(cat, 0.0) + seconds
        assert result.category_seconds == pytest.approx(expected_category)
        assert result.kernel_launches == sum(
            s.launches for d in trainer.group for s in d.kernel_stats.values()
        )
        assert result.peak_memory_bytes == max(d.peak_bytes for d in trainer.group)
        # Group totals strictly exceed the lead-only view in steady state.
        assert sum(result.category_seconds.values()) > sum(
            trainer.device.category_seconds().values()
        )

    def test_makespan_covers_every_device(self, small_graph, dist_trainer_config):
        trainer = DistributedTrainer(
            small_graph,
            dist_trainer_config,
            PiPADConfig(preparing_epochs=1),
            DistributedConfig(num_devices=3),
        )
        result = trainer.train()
        assert result.simulated_seconds == pytest.approx(trainer.group.makespan())
        # Collectives keep the devices synchronized through the end of training.
        for device in trainer.group:
            assert device.elapsed_seconds() <= result.simulated_seconds

    def test_replanning_balances_dense_work(self, small_graph, dist_trainer_config):
        trainer = DistributedTrainer(
            small_graph,
            dist_trainer_config,
            PiPADConfig(preparing_epochs=1),
            DistributedConfig(num_devices=4),
        )
        trainer.train()
        # TGCN is RNN/update dominated, so the calibrated plan must not give
        # any shard a wildly disproportionate share of the node set.
        assert trainer._node_fractions.max() < 0.5

    def test_pcie_interconnect_slower_than_nvlink(self, small_graph, dist_trainer_config):
        times = {}
        for kind in ("nvlink", "pcie"):
            times[kind] = DistributedTrainer(
                small_graph,
                dist_trainer_config,
                PiPADConfig(preparing_epochs=1),
                DistributedConfig(num_devices=4, interconnect=kind),
            ).train().steady_epoch_seconds
        assert times["nvlink"] <= times["pcie"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DistributedConfig(num_devices=0)

    def test_scaling_experiment_requires_single_device_reference(self):
        from repro.experiments import run_experiment

        with pytest.raises(ValueError, match="must include 1"):
            run_experiment("scaling", device_counts=(2, 4))


class TestShardedServing:
    def make_engine(self, graph, num_shards):
        model = build_model("tgcn", graph.feature_dim, 8, seed=0)
        return build_sharded_serving_engine(graph, model, num_shards)

    def test_requests_conserved_across_shards(self, small_graph):
        engine = self.make_engine(small_graph, 3)
        trace = synthesize_serving_trace(small_graph[-1], 60, seed=4)
        report = engine.run_trace(trace)
        num_requests = sum(1 for e in trace if e.kind == "request")
        assert report.metrics.num_requests == num_requests
        shard_counts = [
            report.extras[f"shard{i}_requests"] for i in range(engine.num_shards)
        ]
        assert sum(shard_counts) == num_requests
        # Round-robin routing spreads the load.
        assert max(shard_counts) - min(shard_counts) <= 1

    def test_deltas_broadcast_to_every_shard(self, small_graph):
        engine = self.make_engine(small_graph, 2)
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=7)
        report = engine.run_trace(trace)
        num_deltas = sum(1 for e in trace if e.kind == "delta")
        assert report.metrics.deltas_ingested == num_deltas
        versions = {tuple(r.store.window_versions()) for r in engine.replicas}
        assert len(versions) == 1  # all shards serve the same head state

    def test_routing_is_recorded(self, small_graph):
        engine = self.make_engine(small_graph, 2)
        first = engine.submit([0, 1], at=0.0)
        second = engine.submit([2], at=0.0)
        assert engine.route_of(first)[0] == 0
        assert engine.route_of(second)[0] == 1

    def test_pump_results_keyed_by_global_request_ids(self, small_graph):
        """Regression: shard-local ids collide across shards; the ids submit
        hands out must be the ones pump results and the report use."""
        engine = self.make_engine(small_graph, 2)
        ids = [engine.submit([i], at=0.0) for i in range(4)]
        assert ids == [0, 1, 2, 3]  # shard-locally these are (0,0),(1,0),(0,1),(1,1)
        results = engine.pump(0.0, force=True)
        predicted = set()
        for result in results:
            predicted.update(result.predictions)
        assert predicted == set(ids)
        # Batch ids are unique across shards too (same offset as the report).
        assert len({r.batch_id for r in results}) == len(results)
        report = engine.report()
        assert sorted(r.request_id for r in report.metrics.requests) == ids
        assert {r.batch_id for r in report.metrics.requests} <= {
            r.batch_id for r in results
        }

    def test_direct_replica_submit_rejected_at_pump(self, small_graph):
        """Regression: unmapped shard-local ids used to fall back to the raw
        local id, colliding with issued global ids."""
        engine = self.make_engine(small_graph, 2)
        engine.submit([0], at=0.0)
        engine.replicas[0].submit([1], at=0.0)  # bypasses the engine
        with pytest.raises(KeyError, match="submitted through"):
            engine.pump(0.0, force=True)

    def test_merged_breakdown_does_not_sum_makespans(self, small_graph):
        """Regression: summing K shard makespans ~Kx-inflated the clock."""
        engine = self.make_engine(small_graph, 3)
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=3)
        report = engine.run_trace(trace)
        shard_makespans = [r.device.elapsed_seconds() for r in engine.replicas]
        assert report.breakdown["makespan"] == pytest.approx(max(shard_makespans))
        assert report.simulated_seconds == pytest.approx(max(shard_makespans))
        # Utilization is a ratio: merged as the mean across shards, never summed.
        shard_utils = [r.report().breakdown["gpu_utilization"] for r in engine.replicas]
        assert report.breakdown["gpu_utilization"] == pytest.approx(np.mean(shard_utils))
        assert report.breakdown["gpu_utilization"] <= 1.0
        # Kind-seconds remain additive across the shards.
        assert report.breakdown["h2d"] == pytest.approx(
            sum(r.device.breakdown().get("h2d", 0.0) for r in engine.replicas)
        )

    def test_sharding_reduces_latency_under_load(self, small_graph):
        """With batches expensive enough to saturate one device, spreading
        the traffic over shards must cut the queueing latency."""
        from repro.serving import ServingConfig

        trace = synthesize_serving_trace(
            small_graph[-1], 80, seed=11, mean_interarrival_ms=0.05
        )
        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        config = ServingConfig(window=4, max_batch_requests=2, max_delay_ms=0.05)
        one = build_sharded_serving_engine(
            small_graph, model, 1, config, scale=500.0
        ).run_trace(trace)
        four = build_sharded_serving_engine(
            small_graph, model, 4, config, scale=500.0
        ).run_trace(trace)
        assert four.metrics.mean_latency < one.metrics.mean_latency

    def test_merged_report_shape(self, small_graph):
        engine = self.make_engine(small_graph, 2)
        trace = synthesize_serving_trace(small_graph[-1], 30, seed=5)
        report = engine.run_trace(trace)
        assert report.engine.endswith("-x2")
        assert report.extras["num_shards"] == 2.0
        assert report.simulated_seconds == max(
            r.device.elapsed_seconds() for r in engine.replicas
        )
        result = report.to_training_result()
        assert np.isfinite(result.extras["p50_latency_ms"])

    def test_zero_shards_rejected(self, small_graph):
        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        with pytest.raises(ValueError):
            build_sharded_serving_engine(small_graph, model, 0)


class TestReportMergeBugfixes:
    """Regressions for the sharded report-merge semantics.

    ``rows_touched`` must aggregate as a fleet-wide *sum* (it counts patch
    work actually done), ``deltas_ingested`` as the *logical* delta count,
    reuse-stat gauges as means, and the wall clock must start at first
    traffic, not at engine construction.
    """

    def make_engine(self, graph, num_shards):
        model = build_model("tgcn", graph.feature_dim, 8, seed=0)
        return build_sharded_serving_engine(graph, model, num_shards)

    def deltas_from_trace(self, graph, seed=7):
        trace = synthesize_serving_trace(graph[-1], 40, seed=seed)
        return [e.delta for e in trace if e.kind == "delta"]

    def test_rows_touched_sums_divergent_shard_traffic(self, small_graph):
        """Pinned: report() used to copy replica 0's rows_touched verbatim."""
        engine = self.make_engine(small_graph, 2)
        first, second = self.deltas_from_trace(small_graph)[:2]
        engine.ingest(first, at=0.0)  # broadcast: both replicas touch rows
        # Replica 1 alone absorbs a second delta — the shards now disagree.
        engine.replicas[1].ingest(second, at=0.0)
        per_replica = [r.metrics.rows_touched for r in engine.replicas]
        assert per_replica[1] > per_replica[0]
        merged = engine.report().metrics
        assert merged.rows_touched == sum(per_replica)
        assert merged.rows_touched != per_replica[0]

    def test_deltas_ingested_counts_logical_deltas(self, small_graph):
        engine = self.make_engine(small_graph, 3)
        for delta in self.deltas_from_trace(small_graph)[:3]:
            engine.ingest(delta, at=0.0)
        # Each broadcast lands on all 3 replicas but is ONE logical delta.
        assert engine.report().metrics.deltas_ingested == 3

    def test_reuse_gauges_average_while_counters_sum(self, small_graph):
        engine = self.make_engine(small_graph, 2)
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=9)
        report = engine.run_trace(trace)
        stats = [r.session.stats() for r in engine.replicas]
        # Gauges (point-in-time sizes) merge as the mean across replicas...
        for key in ("cpu_cached_snapshots", "gpu_resident_snapshots", "gpu_buffer_bytes"):
            assert report.reuse_stats[key] == pytest.approx(
                np.mean([s[key] for s in stats])
            )
        # ...while event counters keep summing fleet-wide.
        for key in ("cpu_hits", "gpu_hits", "misses", "rows_patched"):
            assert report.reuse_stats[key] == pytest.approx(
                sum(s[key] for s in stats)
            )

    def test_wall_clock_starts_at_first_traffic(self, small_graph):
        import time as _time

        from repro.serving import ServingConfig
        from repro.serving.scheduler import _build_serving_scheduler

        model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
        single = _build_serving_scheduler(
            small_graph, model, ServingConfig(window=4)
        )
        sharded = self.make_engine(small_graph, 2)
        # Idle engines report zero host wall time, however old they are.
        assert single.report().wall_seconds == 0.0
        assert sharded.report().wall_seconds == 0.0
        # Time spent between construction and first traffic is excluded.
        pause = 0.2
        _time.sleep(pause)
        for engine in (single, sharded):
            engine.submit([0], at=0.0)
            engine.pump(0.0, force=True)
            assert 0.0 < engine.report().wall_seconds < pause
