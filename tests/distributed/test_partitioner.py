"""Tests for node-wise graph sharding with halo bookkeeping, and for the
frame partitioner that shards snapshot groups across pipeline stages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRMatrix,
    FramePartitioner,
    GraphPartitioner,
    GraphSnapshot,
    extract_overlap,
)


class TestPlan:
    def test_boundaries_cover_node_set(self, small_graph):
        for devices in (1, 2, 3, 4):
            plan = GraphPartitioner(devices).plan(small_graph.snapshots)
            assert plan[0] == 0 and plan[-1] == small_graph.num_nodes
            assert np.all(np.diff(plan) >= 1)
            assert len(plan) == devices + 1

    def test_node_mode_gives_uniform_ranges(self, small_graph):
        plan = GraphPartitioner(4, mode="nodes").plan(small_graph.snapshots)
        sizes = np.diff(plan)
        assert sizes.max() - sizes.min() <= 1

    def test_edge_mode_balances_edge_mass(self, small_graph):
        partitioner = GraphPartitioner(3, mode="edges")
        plan = partitioner.plan(small_graph.snapshots, node_weight=0.0)
        fractions = partitioner.edge_fractions(small_graph.snapshots, plan)
        # Contiguous ranges cannot be perfect, but no shard should be wild.
        assert fractions.max() < 0.6

    def test_rejects_more_devices_than_nodes(self, small_graph):
        with pytest.raises(ValueError):
            GraphPartitioner(small_graph.num_nodes + 1).plan(small_graph.snapshots)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            GraphPartitioner(2, mode="hash")


class TestShards:
    def test_shard_union_reconstructs_snapshot(self, small_graph):
        """Acceptance invariant: shards ∪ halos == full graph."""
        partitioner = GraphPartitioner(4)
        snapshot = small_graph[0]
        shards = partitioner.shard_snapshot(snapshot)
        union = np.sort(np.concatenate([s.adjacency.edge_keys() for s in shards]))
        assert np.array_equal(union, snapshot.adjacency.edge_keys())

    def test_shards_are_disjoint(self, small_graph):
        shards = GraphPartitioner(3).shard_snapshot(small_graph[0])
        for a in range(len(shards)):
            for b in range(a + 1, len(shards)):
                inter = np.intersect1d(
                    shards[a].adjacency.edge_keys(), shards[b].adjacency.edge_keys()
                )
                assert len(inter) == 0

    def test_halo_nodes_are_exactly_remote_columns(self, small_graph):
        snapshot = small_graph[0]
        for shard in GraphPartitioner(4).shard_snapshot(snapshot):
            local = np.arange(shard.node_start, shard.node_stop)
            cols = np.unique(shard.adjacency.indices)
            expected = np.setdiff1d(cols, local)
            assert np.array_equal(shard.halo_nodes, expected)
            # Owned columns are never halo.
            assert not np.intersect1d(shard.halo_nodes, local).size

    def test_halo_feature_bytes(self, small_graph):
        shard = GraphPartitioner(2).shard_snapshot(small_graph[0])[0]
        dim = small_graph.feature_dim
        assert shard.halo_feature_bytes(dim) == shard.num_halo_nodes * dim * 4

    def test_halo_feature_bytes_follows_dtype(self, small_graph):
        """The halo traffic is sized by the feature dtype, not hardcoded 4B."""
        shard = GraphPartitioner(2).shard_snapshot(small_graph[0])[0]
        dim = small_graph.feature_dim
        assert shard.halo_feature_bytes(dim, np.float64) == (
            shard.num_halo_nodes * dim * 8
        )
        assert shard.halo_feature_bytes(dim, np.float16) == (
            shard.num_halo_nodes * dim * 2
        )
        assert shard.halo_feature_bytes(dim, "float32") == shard.halo_feature_bytes(dim)

    def test_multi_edge_columns_count_once_in_halo(self):
        """Regression: a remote column referenced through several edges (two
        rows here, plus a parallel multi-edge) must appear once in
        ``halo_nodes`` — its features are fetched once, not per edge — so
        ``num_halo_nodes``/``halo_feature_bytes`` do not over-count traffic."""
        # 4 nodes, 2 devices (nodes {0,1} | {2,3}).  Rows 0 and 1 both
        # reference remote node 3; row 0 references it through a duplicated
        # (multi-edge) column as well.
        indptr = np.array([0, 3, 5, 6, 7], dtype=np.int64)
        indices = np.array([1, 3, 3, 0, 3, 2, 0], dtype=np.int64)
        data = np.ones(len(indices), dtype=np.float32)
        adjacency = CSRMatrix(indptr=indptr, indices=indices, data=data, shape=(4, 4))
        snapshot = GraphSnapshot(
            adjacency=adjacency, features=np.zeros((4, 2), dtype=np.float32)
        )
        shard = GraphPartitioner(2, mode="nodes").shard_snapshot(
            snapshot, np.array([0, 2, 4])
        )[0]
        assert shard.halo_nodes.tolist() == [3]
        assert shard.num_halo_nodes == 1
        assert shard.halo_feature_bytes(2) == 1 * 2 * 4

    def test_shard_group_overlap_reconstructs_members(self, small_graph):
        """Per-shard overlap decomposition stays exact under sharding."""
        partitioner = GraphPartitioner(3)
        snapshots = small_graph.snapshots[:4]
        for group in partitioner.shard_group(snapshots):
            for shard, exclusive in zip(group.shards, group.overlap.exclusives):
                rebuilt = np.union1d(
                    group.overlap.overlap.edge_keys(), exclusive.edge_keys()
                )
                assert np.array_equal(rebuilt, shard.adjacency.edge_keys())

    def test_shard_group_matches_direct_extraction(self, small_graph):
        partitioner = GraphPartitioner(2)
        snapshots = small_graph.snapshots[:3]
        boundaries = partitioner.plan(snapshots)
        groups = partitioner.shard_group(snapshots, boundaries)
        for device, group in enumerate(groups):
            shards = [
                partitioner.shard_snapshot(s, boundaries)[device] for s in snapshots
            ]
            direct = extract_overlap([s.adjacency for s in shards])
            assert np.array_equal(
                group.overlap.overlap.edge_keys(), direct.overlap.edge_keys()
            )

    def test_fractions_sum_to_one(self, small_graph):
        partitioner = GraphPartitioner(4)
        boundaries = partitioner.plan(small_graph.snapshots)
        assert partitioner.node_fractions(boundaries).sum() == pytest.approx(1.0)
        assert partitioner.edge_fractions(
            small_graph.snapshots, boundaries
        ).sum() == pytest.approx(1.0)

    def test_empty_group_rejected(self, small_graph):
        with pytest.raises(ValueError):
            GraphPartitioner(2).shard_group([])


class TestFramePartitioner:
    def test_round_robin_interleaves_adjacent_groups(self):
        assignment = FramePartitioner(4).assign(8)
        assert assignment.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_blocked_keeps_contiguous_runs(self):
        assignment = FramePartitioner(2, schedule="blocked").assign(6)
        assert assignment.tolist() == [0, 0, 0, 1, 1, 1]

    def test_blocked_chunk_sizes_differ_by_at_most_one(self):
        for devices in (2, 3, 4):
            for groups in (5, 7, 9):
                counts = np.bincount(
                    FramePartitioner(devices, schedule="blocked").assign(groups),
                    minlength=devices,
                )
                assert counts.max() - counts.min() <= 1

    def test_every_group_owned_and_in_range(self):
        for schedule in ("round_robin", "blocked"):
            assignment = FramePartitioner(3, schedule=schedule).assign(7)
            assert len(assignment) == 7
            assert assignment.min() >= 0 and assignment.max() < 3

    def test_stages_partition_the_groups(self):
        stages = FramePartitioner(3).stages(8)
        owned = sorted(g for stage in stages for g in stage.groups)
        assert owned == list(range(8))
        assert [stage.device for stage in stages] == [0, 1, 2]

    def test_fewer_groups_than_devices_leaves_stages_empty(self):
        stages = FramePartitioner(4).stages(2)
        assert [stage.num_groups for stage in stages] == [1, 1, 0, 0]

    def test_group_fractions_sum_to_one(self):
        fractions = FramePartitioner(4).group_fractions(10)
        assert fractions.sum() == pytest.approx(1.0)

    def test_handoff_counts(self):
        """Round-robin maximizes handoffs, blocked minimizes them."""
        assert FramePartitioner(4).num_handoffs(8) == 7
        assert FramePartitioner(4, schedule="blocked").num_handoffs(8) == 3
        assert FramePartitioner(1).num_handoffs(8) == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            FramePartitioner(2, schedule="random")
        with pytest.raises(ValueError):
            FramePartitioner(0)
        with pytest.raises(ValueError):
            FramePartitioner(2).assign(0)
