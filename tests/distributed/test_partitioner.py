"""Tests for node-wise graph sharding with halo bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphPartitioner, extract_overlap


class TestPlan:
    def test_boundaries_cover_node_set(self, small_graph):
        for devices in (1, 2, 3, 4):
            plan = GraphPartitioner(devices).plan(small_graph.snapshots)
            assert plan[0] == 0 and plan[-1] == small_graph.num_nodes
            assert np.all(np.diff(plan) >= 1)
            assert len(plan) == devices + 1

    def test_node_mode_gives_uniform_ranges(self, small_graph):
        plan = GraphPartitioner(4, mode="nodes").plan(small_graph.snapshots)
        sizes = np.diff(plan)
        assert sizes.max() - sizes.min() <= 1

    def test_edge_mode_balances_edge_mass(self, small_graph):
        partitioner = GraphPartitioner(3, mode="edges")
        plan = partitioner.plan(small_graph.snapshots, node_weight=0.0)
        fractions = partitioner.edge_fractions(small_graph.snapshots, plan)
        # Contiguous ranges cannot be perfect, but no shard should be wild.
        assert fractions.max() < 0.6

    def test_rejects_more_devices_than_nodes(self, small_graph):
        with pytest.raises(ValueError):
            GraphPartitioner(small_graph.num_nodes + 1).plan(small_graph.snapshots)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            GraphPartitioner(2, mode="hash")


class TestShards:
    def test_shard_union_reconstructs_snapshot(self, small_graph):
        """Acceptance invariant: shards ∪ halos == full graph."""
        partitioner = GraphPartitioner(4)
        snapshot = small_graph[0]
        shards = partitioner.shard_snapshot(snapshot)
        union = np.sort(np.concatenate([s.adjacency.edge_keys() for s in shards]))
        assert np.array_equal(union, snapshot.adjacency.edge_keys())

    def test_shards_are_disjoint(self, small_graph):
        shards = GraphPartitioner(3).shard_snapshot(small_graph[0])
        for a in range(len(shards)):
            for b in range(a + 1, len(shards)):
                inter = np.intersect1d(
                    shards[a].adjacency.edge_keys(), shards[b].adjacency.edge_keys()
                )
                assert len(inter) == 0

    def test_halo_nodes_are_exactly_remote_columns(self, small_graph):
        snapshot = small_graph[0]
        for shard in GraphPartitioner(4).shard_snapshot(snapshot):
            local = np.arange(shard.node_start, shard.node_stop)
            cols = np.unique(shard.adjacency.indices)
            expected = np.setdiff1d(cols, local)
            assert np.array_equal(shard.halo_nodes, expected)
            # Owned columns are never halo.
            assert not np.intersect1d(shard.halo_nodes, local).size

    def test_halo_feature_bytes(self, small_graph):
        shard = GraphPartitioner(2).shard_snapshot(small_graph[0])[0]
        dim = small_graph.feature_dim
        assert shard.halo_feature_bytes(dim) == shard.num_halo_nodes * dim * 4

    def test_shard_group_overlap_reconstructs_members(self, small_graph):
        """Per-shard overlap decomposition stays exact under sharding."""
        partitioner = GraphPartitioner(3)
        snapshots = small_graph.snapshots[:4]
        for group in partitioner.shard_group(snapshots):
            for shard, exclusive in zip(group.shards, group.overlap.exclusives):
                rebuilt = np.union1d(
                    group.overlap.overlap.edge_keys(), exclusive.edge_keys()
                )
                assert np.array_equal(rebuilt, shard.adjacency.edge_keys())

    def test_shard_group_matches_direct_extraction(self, small_graph):
        partitioner = GraphPartitioner(2)
        snapshots = small_graph.snapshots[:3]
        boundaries = partitioner.plan(snapshots)
        groups = partitioner.shard_group(snapshots, boundaries)
        for device, group in enumerate(groups):
            shards = [
                partitioner.shard_snapshot(s, boundaries)[device] for s in snapshots
            ]
            direct = extract_overlap([s.adjacency for s in shards])
            assert np.array_equal(
                group.overlap.overlap.edge_keys(), direct.overlap.edge_keys()
            )

    def test_fractions_sum_to_one(self, small_graph):
        partitioner = GraphPartitioner(4)
        boundaries = partitioner.plan(small_graph.snapshots)
        assert partitioner.node_fractions(boundaries).sum() == pytest.approx(1.0)
        assert partitioner.edge_fractions(
            small_graph.snapshots, boundaries
        ).sum() == pytest.approx(1.0)

    def test_empty_group_rejected(self, small_graph):
        with pytest.raises(ValueError):
            GraphPartitioner(2).shard_group([])
