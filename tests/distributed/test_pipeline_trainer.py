"""Tests for frame-pipeline training across a simulated device group."""

from __future__ import annotations

import pytest

from repro.baselines import TrainerConfig
from repro.core import PiPADConfig, PiPADTrainer, PipelineConfig, PipelineTrainer


def _config(model: str = "tgcn") -> TrainerConfig:
    return TrainerConfig(model=model, frame_size=4, epochs=3)


def _pipad() -> PiPADConfig:
    return PiPADConfig(preparing_epochs=1, fixed_s_per=2)


class TestPipelineConfig:
    def test_defaults_validate(self):
        config = PipelineConfig()
        assert config.num_devices == 2
        assert config.schedule == "round_robin"

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(num_devices=0)
        with pytest.raises(ValueError):
            PipelineConfig(schedule="random")


class TestNumerics:
    @pytest.mark.parametrize("model", ["tgcn", "evolvegcn", "mpnn_lstm"])
    def test_losses_bit_identical_to_single_device(self, small_graph, model):
        """Acceptance invariant: pipelining changes when work runs, never
        what is computed — every model trains bit-identically to plain PiPAD."""
        single = PiPADTrainer(small_graph, _config(model), _pipad()).train()
        pipelined = PipelineTrainer(
            small_graph,
            _config(model),
            _pipad(),
            PipelineConfig(num_devices=3),
        ).train()
        assert pipelined.loss_curve() == single.loss_curve()
        assert pipelined.final_loss == single.final_loss

    def test_schedule_does_not_change_numerics(self, small_graph):
        losses = {}
        for schedule in ("round_robin", "blocked"):
            trainer = PipelineTrainer(
                small_graph,
                _config(),
                _pipad(),
                PipelineConfig(num_devices=2, schedule=schedule),
            )
            losses[schedule] = trainer.train().loss_curve()
        assert losses["round_robin"] == losses["blocked"]

    def test_single_stage_degenerates_to_plain_pipad(self, small_graph):
        single = PiPADTrainer(small_graph, _config(), _pipad()).train()
        one_stage = PipelineTrainer(
            small_graph, _config(), _pipad(), PipelineConfig(num_devices=1)
        ).train()
        assert one_stage.loss_curve() == single.loss_curve()
        assert one_stage.simulated_seconds == pytest.approx(single.simulated_seconds)
        assert one_stage.extras["pipeline_bubble_seconds"] == 0.0
        assert "peer_transfer_seconds" not in one_stage.extras


class TestSchedule:
    def test_pipelining_speeds_up_steady_epochs(self, small_graph):
        """On a workload big enough that kernels dominate the link latency,
        pipelining the frame across stages beats the single device."""
        config = TrainerConfig(
            model="evolvegcn", frame_size=4, epochs=3, cost_scale=2000.0
        )
        single = PiPADTrainer(small_graph, config, _pipad()).train()
        pipelined = PipelineTrainer(
            small_graph, config, _pipad(), PipelineConfig(num_devices=2)
        ).train()
        assert pipelined.steady_epoch_seconds < single.steady_epoch_seconds

    def test_multi_stage_run_itemizes_pipeline_costs(self, small_graph):
        trainer = PipelineTrainer(
            small_graph, _config(), _pipad(), PipelineConfig(num_devices=2)
        )
        result = trainer.train()
        assert result.extras["num_devices"] == 2.0
        assert result.extras["peer_transfer_seconds"] > 0
        assert result.extras["all_reduce_seconds"] > 0
        assert result.extras["pipeline_bubble_seconds"] > 0
        # No node sharding in the pipeline topology: no halo traffic.
        assert "halo_exchange_seconds" not in result.extras

    def test_work_lands_on_every_stage(self, small_graph):
        trainer = PipelineTrainer(
            small_graph, _config(), _pipad(), PipelineConfig(num_devices=2)
        )
        trainer.train()
        for device in trainer.group:
            kinds = {op.kind for op in device.timeline.ops}
            assert "kernel" in kinds and "h2d" in kinds

    def test_preparing_epochs_stay_on_the_lead_device(self, small_graph):
        trainer = PipelineTrainer(
            small_graph,
            _config(),
            PiPADConfig(preparing_epochs=1, fixed_s_per=2),
            PipelineConfig(num_devices=3),
        )
        trainer.run_epoch(0)  # preparing epoch
        assert trainer.group.devices[1].timeline.ops == []
        assert trainer.group.devices[2].timeline.ops == []

    def test_group_makespan_is_the_result_clock(self, small_graph):
        trainer = PipelineTrainer(
            small_graph, _config(), _pipad(), PipelineConfig(num_devices=2)
        )
        result = trainer.train()
        assert result.simulated_seconds == pytest.approx(trainer.group.makespan())

    def test_deterministic_across_runs(self, small_graph):
        def run():
            return PipelineTrainer(
                small_graph, _config(), _pipad(), PipelineConfig(num_devices=2)
            ).train()

        first, second = run(), run()
        assert first.simulated_seconds == second.simulated_seconds
        assert first.loss_curve() == second.loss_curve()
        assert first.extras["pipeline_bubble_seconds"] == pytest.approx(
            second.extras["pipeline_bubble_seconds"]
        )
