"""Autograd engine tests: forward values, gradients, observer, grad mode."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, no_grad, observe_ops, ops, op_scope
from repro.tensor.function import OpEvent, current_scope


def numeric_gradient(fn, array, eps=1e-3):
    """Central-difference gradient of a scalar-valued fn w.r.t. array."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        f_plus = fn()
        array[idx] = original - eps
        f_minus = fn()
        array[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_loss, *tensors, atol=2e-2, rtol=5e-2):
    """Compare autograd gradients against numeric differentiation."""
    loss = build_loss()
    loss.backward()
    for tensor in tensors:
        numeric = numeric_gradient(lambda: build_loss().item(), tensor.data)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=rtol)


def rand_tensor(*shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.uniform(-1, 1, size=shape).astype(np.float32), requires_grad=requires_grad)


class TestForwardValues:
    def test_add_broadcast(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.arange(3, dtype=np.float32))
        assert np.allclose((a + b).numpy(), 1.0 + np.arange(3))

    def test_matmul(self):
        a, b = rand_tensor(3, 4), rand_tensor(4, 5, seed=1)
        assert np.allclose((a @ b).numpy(), a.numpy() @ b.numpy(), atol=1e-5)

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            _ = rand_tensor(3) @ rand_tensor(3)

    def test_activations_match_numpy(self):
        x = rand_tensor(4, 4, seed=2)
        assert np.allclose(ops.sigmoid(x).numpy(), 1 / (1 + np.exp(-x.numpy())), atol=1e-5)
        assert np.allclose(ops.tanh(x).numpy(), np.tanh(x.numpy()), atol=1e-6)
        assert np.allclose(ops.relu(x).numpy(), np.maximum(x.numpy(), 0))

    def test_softmax_rows_sum_to_one(self):
        x = rand_tensor(5, 7, seed=3)
        assert np.allclose(ops.softmax(x, axis=-1).numpy().sum(axis=-1), 1.0, atol=1e-5)

    def test_reductions(self):
        x = rand_tensor(3, 4, seed=4)
        assert np.allclose(ops.sum(x).item(), x.numpy().sum(), atol=1e-5)
        assert np.allclose(ops.mean(x, axis=0).numpy(), x.numpy().mean(axis=0), atol=1e-5)
        assert np.allclose(ops.max(x, axis=1).numpy(), x.numpy().max(axis=1))

    def test_concat_and_stack(self):
        a, b = rand_tensor(2, 3), rand_tensor(2, 2, seed=1)
        assert ops.concat([a, b], axis=1).shape == (2, 5)
        assert ops.stack([a, a], axis=0).shape == (2, 2, 3)

    def test_getitem_slicing(self):
        x = rand_tensor(4, 6)
        assert np.allclose(x[:, 2:4].numpy(), x.numpy()[:, 2:4])

    def test_reshape_transpose(self):
        x = rand_tensor(2, 6)
        assert x.reshape(3, 4).shape == (3, 4)
        assert np.allclose(x.T.numpy(), x.numpy().T)

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            rand_tensor(2, 2).item()


class TestGradients:
    def test_add_mul_chain(self):
        a, b = rand_tensor(3, 3, seed=1), rand_tensor(3, 3, seed=2)
        check_gradient(lambda: ops.sum((a + b) * a), a, b)

    def test_matmul_grad(self):
        a, b = rand_tensor(3, 4, seed=3), rand_tensor(4, 2, seed=4)
        check_gradient(lambda: ops.sum(a @ b), a, b)

    def test_div_grad(self):
        a, b = rand_tensor(3, 3, seed=5), Tensor(np.full((3, 3), 2.0, np.float32), requires_grad=True)
        check_gradient(lambda: ops.sum(a / b), a, b)

    def test_activation_grads(self):
        x = rand_tensor(4, 3, seed=6)
        check_gradient(lambda: ops.sum(ops.sigmoid(x) * ops.tanh(x)), x)

    def test_softmax_grad(self):
        x = rand_tensor(3, 5, seed=7)
        weights = Tensor(np.random.default_rng(0).random((3, 5)).astype(np.float32))
        check_gradient(lambda: ops.sum(ops.softmax(x, axis=-1) * weights), x)

    def test_mean_axis_grad(self):
        x = rand_tensor(4, 5, seed=8)
        check_gradient(lambda: ops.sum(ops.mean(x, axis=1) ** 2.0), x)

    def test_broadcast_bias_grad(self):
        x, b = rand_tensor(5, 3, seed=9), rand_tensor(3, seed=10)
        check_gradient(lambda: ops.sum((x + b) ** 2.0), x, b)

    def test_getitem_grad(self):
        x = rand_tensor(4, 6, seed=11)
        check_gradient(lambda: ops.sum(x[:, 1:4] * x[:, 2:5]), x)

    def test_concat_grad(self):
        a, b = rand_tensor(3, 2, seed=12), rand_tensor(3, 3, seed=13)
        check_gradient(lambda: ops.sum(ops.concat([a, b], axis=1) ** 2.0), a, b)

    def test_grad_accumulates_across_backward_calls(self):
        x = rand_tensor(2, 2, seed=14)
        ops.sum(x * x).backward()
        first = x.grad.copy()
        ops.sum(x * x).backward()
        assert np.allclose(x.grad, 2 * first)

    def test_shared_subexpression_accumulates(self):
        x = rand_tensor(3, 3, seed=15)
        y = x * x
        check_gradient(lambda: ops.sum(x * x + x * x), x)
        assert y is not None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_shape_mismatch(self):
        x = rand_tensor(2, 2)
        y = ops.sum(x)
        with pytest.raises(ValueError):
            y.backward(np.ones((3, 3), dtype=np.float32))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 5), m=st.integers(1, 5), k=st.integers(1, 5), seed=st.integers(0, 100))
    def test_property_linear_chain_gradcheck(self, n, m, k, seed):
        """Gradients of sum(tanh(A@B)) match numeric differentiation for any shape."""
        a, b = rand_tensor(n, k, seed=seed), rand_tensor(k, m, seed=seed + 1)
        check_gradient(lambda: ops.sum(ops.tanh(a @ b)), a, b)


class TestGradModeAndObserver:
    def test_no_grad_blocks_graph(self):
        x = rand_tensor(2, 2)
        with no_grad():
            y = ops.sum(x * x)
        assert y.requires_grad is False

    def test_observer_receives_forward_and_backward(self):
        events = []
        x = rand_tensor(3, 3)
        with observe_ops(events.append):
            loss = ops.sum(ops.relu(x @ x))
            loss.backward()
        names = [(e.name, e.phase) for e in events]
        assert ("matmul", "forward") in names
        assert ("matmul", "backward") in names
        assert all(isinstance(e, OpEvent) for e in events)

    def test_observer_restored_after_context(self):
        from repro.tensor import get_op_observer

        with observe_ops(lambda e: None):
            pass
        assert get_op_observer() is None

    def test_op_scope_tagging(self):
        events = []
        x = rand_tensor(2, 2)
        with observe_ops(events.append):
            with op_scope("rnn"):
                _ = x * x
            _ = x + x
        scopes = {e.name: e.attrs.get("scope") for e in events}
        assert scopes["mul"] == "rnn"
        assert scopes["add"] == "other"

    def test_backward_event_keeps_forward_scope(self):
        events = []
        x = rand_tensor(2, 2)
        with observe_ops(events.append):
            with op_scope("update"):
                y = ops.sum(x * x)
            y.backward()
        backward_scopes = [e.attrs.get("scope") for e in events if e.phase == "backward" and e.name == "mul"]
        assert backward_scopes == ["update"]

    def test_current_scope_default(self):
        assert current_scope() == "other"
