"""Tests for nn modules, RNN cells, losses, optimizers and the sparse op."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRMatrix
from repro.gpu import GPUSpec
from repro.kernels import GESpMMAggregation
from repro.tensor import Adam, SGD, Tensor, ops, spmm
from repro.tensor.nn import (
    GRUCell,
    Linear,
    LSTMCell,
    Module,
    Parameter,
    bce_with_logits_loss,
    cross_entropy_loss,
    l1_loss,
    mse_loss,
)


def rand(shape, seed=0):
    return np.random.default_rng(seed).uniform(-1, 1, size=shape).astype(np.float32)


class TestModule:
    def test_parameters_registered_recursively(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 3, seed=0)
                self.fc2 = Linear(3, 2, seed=1)

        net = Net()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_state_dict_roundtrip(self):
        lin = Linear(3, 2, seed=0)
        state = lin.state_dict()
        other = Linear(3, 2, seed=99)
        other.load_state_dict(state)
        assert np.allclose(other.weight.data, lin.weight.data)

    def test_state_dict_mismatch_rejected(self):
        lin = Linear(3, 2, seed=0)
        with pytest.raises(KeyError):
            lin.load_state_dict({"weight": np.zeros((3, 2))})

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2)

        net = Net().eval()
        assert net.training is False and net.fc.training is False

    def test_zero_grad(self):
        lin = Linear(2, 2, seed=0)
        x = Tensor(rand((3, 2)), requires_grad=True)
        mse_loss(lin(x), Tensor(np.zeros((3, 2), np.float32))).backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestLayers:
    def test_linear_shapes_and_values(self):
        lin = Linear(4, 3, seed=0)
        x = Tensor(rand((5, 4)))
        out = lin(x)
        assert out.shape == (5, 3)
        assert np.allclose(out.numpy(), x.numpy() @ lin.weight.data + lin.bias.data, atol=1e-5)

    def test_linear_no_bias(self):
        lin = Linear(4, 3, bias=False, seed=0)
        assert lin.bias is None and len(lin.parameters()) == 1

    def test_linear_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_lstm_cell_shapes_and_state(self):
        cell = LSTMCell(4, 6, seed=0)
        x = Tensor(rand((5, 4)))
        h, c = cell(x)
        assert h.shape == (5, 6) and c.shape == (5, 6)
        h2, c2 = cell(x, (h, c))
        assert not np.allclose(h.numpy(), h2.numpy())

    def test_gru_cell_shapes(self):
        cell = GRUCell(4, 6, seed=0)
        x = Tensor(rand((5, 4)))
        h = cell(x)
        assert h.shape == (5, 6)
        assert np.all(np.abs(h.numpy()) <= 1.0 + 1e-5)

    def test_rnn_cells_backprop_to_weights(self):
        cell = GRUCell(3, 3, seed=0)
        x = Tensor(rand((4, 3)), requires_grad=True)
        loss = mse_loss(cell(x), Tensor(np.zeros((4, 3), np.float32)))
        loss.backward()
        assert cell.weight_ih.grad is not None and x.grad is not None

    def test_gru_identity_on_converged_update_gate(self):
        cell = GRUCell(3, 3, seed=1)
        # Forcing the update gate to 1 keeps the previous hidden state.
        cell.bias_ih.data[3:6] = 50.0
        h_prev = Tensor(rand((2, 3), seed=5))
        h_next = cell(Tensor(rand((2, 3), seed=6)), h_prev)
        assert np.allclose(h_next.numpy(), h_prev.numpy(), atol=1e-3)


class TestLosses:
    def test_mse_zero_for_equal(self):
        x = Tensor(rand((3, 3)))
        assert mse_loss(x, Tensor(x.numpy().copy())).item() == pytest.approx(0.0, abs=1e-7)

    def test_mse_matches_numpy(self):
        a, b = rand((4, 2), 1), rand((4, 2), 2)
        assert mse_loss(Tensor(a), Tensor(b)).item() == pytest.approx(((a - b) ** 2).mean(), rel=1e-5)

    def test_l1_close_to_abs_mean(self):
        a, b = rand((4, 2), 1), rand((4, 2), 2)
        assert l1_loss(Tensor(a), Tensor(b)).item() == pytest.approx(np.abs(a - b).mean(), rel=1e-3)

    def test_bce_matches_reference(self):
        logits, targets = rand((6, 1), 3), (rand((6, 1), 4) > 0).astype(np.float32)
        expected = np.mean(
            np.maximum(logits, 0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
        )
        assert bce_with_logits_loss(Tensor(logits), Tensor(targets)).item() == pytest.approx(
            expected, rel=1e-4
        )

    def test_cross_entropy_perfect_prediction_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        one_hot = Tensor(np.eye(2, dtype=np.float32))
        assert cross_entropy_loss(logits, one_hot).item() < 1e-3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.zeros((2, 2))), Tensor(np.zeros((3, 2))))


class TestOptimizers:
    def _quadratic_problem(self):
        target = rand((4, 3), seed=8)
        param = Parameter(np.zeros((4, 3), dtype=np.float32))
        return param, Tensor(target)

    def test_sgd_reduces_loss(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.5)
        losses = []
        for _ in range(20):
            loss = mse_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.1

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.2, momentum=0.9)
        for _ in range(30):
            loss = mse_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert mse_loss(param, target).item() < 1e-2

    def test_adam_converges(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(100):
            loss = mse_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert mse_loss(param, target).item() < 1e-2

    def test_optimizer_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones((2, 2), dtype=np.float32))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        loss = ops.sum(param * Tensor(np.zeros((2, 2), np.float32)))
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert np.all(param.data < 1.0)


class TestSparseOp:
    def _kernel(self):
        rng = np.random.default_rng(0)
        rows, cols = rng.integers(0, 10, 30), rng.integers(0, 10, 30)
        mask = rows != cols
        adj = CSRMatrix.from_edges(rows[mask], cols[mask], (10, 10))
        return adj, GESpMMAggregation(adj, GPUSpec())

    def test_spmm_forward_matches_dense(self):
        adj, kernel = self._kernel()
        x = Tensor(rand((10, 4)))
        assert np.allclose(spmm(kernel, x).numpy(), adj.to_dense() @ x.numpy(), atol=1e-5)

    def test_spmm_backward_is_transpose_matmul(self):
        adj, kernel = self._kernel()
        x = Tensor(rand((10, 4)), requires_grad=True)
        out = spmm(kernel, x)
        out.backward(np.ones_like(out.numpy()))
        expected = adj.to_dense().T @ np.ones((10, 4), dtype=np.float32)
        assert np.allclose(x.grad, expected, atol=1e-5)

    def test_spmm_emits_kernel_cost(self):
        from repro.tensor import observe_ops

        _, kernel = self._kernel()
        events = []
        x = Tensor(rand((10, 4)), requires_grad=True)
        with observe_ops(events.append):
            spmm(kernel, x).backward(np.ones((10, 4), dtype=np.float32))
        spmm_events = [e for e in events if e.name == "spmm"]
        assert len(spmm_events) == 2
        assert all(e.attrs.get("kernel_cost") is not None for e in spmm_events)
