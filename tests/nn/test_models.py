"""Tests for the DGNN models and the aggregation providers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import GPUSpec
from repro.nn import (
    DictAggregationCache,
    EvolveGCN,
    ExecutionContext,
    GCNUpdate,
    MPNNLSTM,
    SequentialAggregationProvider,
    TGCN,
    build_model,
    list_models,
    mean_inverse_degree,
)
from repro.tensor import Tensor
from repro.tensor.nn.loss import mse_loss

SPEC = GPUSpec()


def features_of(snapshots):
    return [Tensor(s.features) for s in snapshots]


class TestProviders:
    def test_sequential_aggregation_matches_mean_normalization(self, small_graph):
        snapshot = small_graph[0]
        provider = SequentialAggregationProvider([snapshot], kernel_name="coo", spec=SPEC)
        [result] = provider.aggregate_many(0, [Tensor(snapshot.features)])
        dense = snapshot.adjacency.to_dense()
        expected = (dense @ snapshot.features + snapshot.features) * mean_inverse_degree(snapshot)
        assert np.allclose(result.numpy(), expected, atol=1e-4)

    def test_kernel_flavours_agree(self, small_graph):
        snapshot = small_graph[1]
        outs = []
        for kernel in ("coo", "gespmm", "sliced"):
            provider = SequentialAggregationProvider([snapshot], kernel_name=kernel, spec=SPEC)
            outs.append(provider.aggregate_many(0, [Tensor(snapshot.features)])[0].numpy())
        assert np.allclose(outs[0], outs[1], atol=1e-4)
        assert np.allclose(outs[0], outs[2], atol=1e-4)

    def test_cache_hit_skips_recompute_and_matches(self, small_graph):
        snapshot = small_graph[2]
        cache = DictAggregationCache()
        provider = SequentialAggregationProvider([snapshot], spec=SPEC, cache=cache)
        first = provider.aggregate_many(0, [Tensor(snapshot.features)])[0].numpy()
        assert len(cache) == 1
        second_provider = SequentialAggregationProvider([snapshot], spec=SPEC, cache=cache)
        second = second_provider.aggregate_many(0, [Tensor(snapshot.features)])[0].numpy()
        assert second_provider.cache_hits == 1
        assert np.allclose(first, second)

    def test_cache_not_used_for_non_reusable_layer(self, small_graph):
        snapshot = small_graph[2]
        cache = DictAggregationCache()
        provider = SequentialAggregationProvider(
            [snapshot], spec=SPEC, cache=cache, reusable_layers=(0,)
        )
        provider.aggregate_many(1, [Tensor(snapshot.features)])
        assert len(cache) == 0

    def test_wrong_feature_count_rejected(self, small_graph):
        provider = SequentialAggregationProvider([small_graph[0]], spec=SPEC)
        with pytest.raises(ValueError):
            provider.aggregate_many(0, [])


class TestGCNUpdate:
    def test_forward_shape_and_grad(self):
        update = GCNUpdate(4, 8, seed=0)
        x = Tensor(np.random.default_rng(0).random((10, 4)).astype(np.float32))
        out = update(x, ExecutionContext())
        assert out.shape == (10, 8)
        mse_loss(out, Tensor(np.zeros((10, 8), np.float32))).backward()
        assert update.weight.grad is not None and update.bias.grad is not None

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GCNUpdate(0, 3)


class TestModelFactory:
    def test_list_models(self):
        assert set(list_models()) == {"evolvegcn", "mpnn_lstm", "tgcn"}

    def test_build_model_by_name(self):
        assert isinstance(build_model("mpnn-lstm", 4, 8), MPNNLSTM)
        assert isinstance(build_model("EVOLVEGCN", 4, 8), EvolveGCN)
        assert isinstance(build_model("tgcn", 4, 8), TGCN)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("gat", 4, 8)

    def test_seed_reproducibility(self):
        a = build_model("tgcn", 4, 8, seed=3).state_dict()
        b = build_model("tgcn", 4, 8, seed=3).state_dict()
        assert all(np.allclose(a[k], b[k]) for k in a)

    def test_structural_metadata(self):
        assert MPNNLSTM.num_gcn_layers == 2 and not MPNNLSTM.evolves_weights
        assert EvolveGCN.evolves_weights
        assert TGCN.needs_topology_with_reuse is False
        assert MPNNLSTM.needs_topology_with_reuse is True


@pytest.mark.parametrize("model_name", ["mpnn_lstm", "evolvegcn", "tgcn"])
class TestModelForward:
    def _run_frame(self, model, snapshots, partition_sizes):
        state = model.init_state(snapshots[0].num_nodes)
        predictions = []
        index = 0
        for size in partition_sizes:
            group = snapshots[index : index + size]
            index += size
            provider = SequentialAggregationProvider(group, kernel_name="coo", spec=SPEC)
            outs, state = model.forward_partition(
                provider, features_of(group), state, ExecutionContext()
            )
            predictions.extend(outs)
        return predictions

    def test_output_shapes(self, model_name, small_graph):
        model = build_model(model_name, small_graph.feature_dim, 8, seed=0)
        preds = self._run_frame(model, small_graph.snapshots[:4], [1, 1, 1, 1])
        assert len(preds) == 4
        assert all(p.shape == (small_graph.num_nodes, 1) for p in preds)

    def test_partitioning_does_not_change_numerics(self, model_name, small_graph):
        """Processing snapshots in groups must be numerically identical to 1-by-1."""
        snapshots = small_graph.snapshots[:4]
        model = build_model(model_name, small_graph.feature_dim, 8, seed=1)
        one_by_one = self._run_frame(model, snapshots, [1, 1, 1, 1])
        grouped = self._run_frame(model, snapshots, [2, 2])
        for a, b in zip(one_by_one, grouped):
            assert np.allclose(a.numpy(), b.numpy(), atol=1e-4)

    def test_recurrent_state_matters(self, model_name, small_graph):
        """Predictions for the last snapshot depend on the earlier snapshots."""
        snapshots = small_graph.snapshots[:3]
        model = build_model(model_name, small_graph.feature_dim, 8, seed=2)
        full = self._run_frame(model, snapshots, [1, 1, 1])[-1]
        only_last = self._run_frame(model, snapshots[-1:], [1])[-1]
        assert not np.allclose(full.numpy(), only_last.numpy(), atol=1e-6)

    def test_backward_reaches_all_parameters(self, model_name, small_graph):
        snapshots = small_graph.snapshots[:3]
        model = build_model(model_name, small_graph.feature_dim, 8, seed=3)
        preds = self._run_frame(model, snapshots, [3])
        target = Tensor(np.zeros((small_graph.num_nodes, 1), np.float32))
        mse_loss(preds[-1], target).backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads), f"{sum(grads)}/{len(grads)} parameters received gradients"
