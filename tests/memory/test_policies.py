"""Eviction-policy unit tests: LRU recency order, CLOCK second chance."""

from __future__ import annotations

import pytest

from repro.memory import CACHE_POLICY_REGISTRY, build_policy
from repro.memory.policy import ClockPolicy, LRUPolicy


class TestLRUPolicy:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy()
        for key in "abc":
            policy.on_admit(key)
        assert policy.victim() == "a"
        policy.on_access("a")  # now b is the oldest
        assert policy.victim() == "b"

    def test_admit_counts_as_a_use(self):
        policy = LRUPolicy()
        policy.on_admit("a")
        policy.on_admit("b")
        policy.on_access("a")
        policy.on_admit("c")
        assert policy.victim() == "b"

    def test_evicted_key_leaves_the_order(self):
        policy = LRUPolicy()
        for key in "ab":
            policy.on_admit(key)
        policy.on_evict("a")
        assert policy.victim() == "b"
        policy.on_evict("b")
        assert policy.victim() is None

    def test_clear_and_len(self):
        policy = LRUPolicy()
        for key in "abc":
            policy.on_admit(key)
        assert len(policy) == 3
        policy.clear()
        assert len(policy) == 0
        assert policy.victim() is None


class TestClockPolicy:
    def test_referenced_key_gets_a_second_chance(self):
        policy = ClockPolicy()
        for key in "abc":
            policy.on_admit(key)
        policy.on_access("a")  # sets a's reference bit
        # The sweep clears a's bit and passes over it; b is the victim.
        assert policy.victim() == "b"

    def test_unreferenced_key_is_immediate_victim(self):
        policy = ClockPolicy()
        policy.on_admit("a")
        policy.on_admit("b")
        assert policy.victim() == "a"

    def test_all_referenced_still_yields_a_victim(self):
        policy = ClockPolicy()
        for key in "abc":
            policy.on_admit(key)
            policy.on_access(key)
        # Second pass after all bits are cleared must terminate with a victim.
        assert policy.victim() in set("abc")

    def test_empty_policy_has_no_victim(self):
        assert ClockPolicy().victim() is None


class TestRegistry:
    def test_registry_entries_build(self):
        for name, (cls, description) in CACHE_POLICY_REGISTRY.items():
            policy = build_policy(name)
            assert isinstance(policy, cls)
            assert description

    def test_unknown_policy_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="lru"):
            build_policy("arc")
