"""FeatureCache semantics: tier cascade, demotion, writeback, invalidation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    TIER_GPU,
    TIER_PINNED,
    TIER_SPILL,
    FeatureCache,
    aggregate_cache_stats,
    blocks_covering,
    blocks_of_rows,
)


def make_cache(gpu=100, pinned=100, spill=None, policy="lru"):
    return FeatureCache(
        gpu_budget_bytes=gpu,
        pinned_budget_bytes=pinned,
        spill_budget_bytes=spill,
        policy=policy,
    )


class TestAccessAndAdmission:
    def test_miss_admits_into_gpu_tier_first(self):
        cache = make_cache()
        plan = cache.access([("a", 40.0)])
        assert plan.misses == 1 and plan.miss_bytes == 40.0
        assert cache.tier_of("a") == TIER_GPU

    def test_hit_reports_tier_bytes(self):
        cache = make_cache()
        cache.access([("a", 40.0)])
        plan = cache.access([("a", 40.0)])
        assert plan.gpu_hits == 1 and plan.gpu_bytes == 40.0
        assert plan.transfer_bytes == 0.0 and plan.gather_bytes == 0.0

    def test_pinned_hit_still_pays_the_transfer(self):
        cache = make_cache(gpu=0, pinned=100)
        cache.access([("a", 40.0)])
        assert cache.tier_of("a") == TIER_PINNED
        plan = cache.access([("a", 40.0)])
        assert plan.pinned_hits == 1
        assert plan.transfer_bytes == 40.0  # h2d still happens
        assert plan.gather_bytes == 0.0  # gather+pin skipped

    def test_spill_hit_costs_like_a_miss(self):
        cache = make_cache(gpu=0, pinned=0)
        cache.access([("a", 40.0)])
        assert cache.tier_of("a") == TIER_SPILL
        plan = cache.access([("a", 40.0)])
        assert plan.spill_hits == 1
        assert plan.transfer_bytes == 40.0 and plan.gather_bytes == 40.0

    def test_eviction_cascades_downward(self):
        cache = make_cache(gpu=100, pinned=100)
        cache.access([("a", 60.0), ("b", 60.0)])  # b evicts a to pinned
        assert cache.tier_of("b") == TIER_GPU
        assert cache.tier_of("a") == TIER_PINNED
        stats = cache.stats()
        assert stats["feature_cache_evictions"] == 1
        assert stats["feature_cache_demotions"] == 1

    def test_block_larger_than_every_bounded_tier_stays_uncached(self):
        cache = make_cache(gpu=10, pinned=10, spill=10)
        plan = cache.access([("huge", 50.0)])
        assert plan.misses == 1
        assert "huge" not in cache
        # A second access misses again — the block never became resident.
        assert cache.access([("huge", 50.0)]).misses == 1

    def test_zero_capacity_gpu_tier_sends_everything_down(self):
        """Satellite: a 0-byte GPU budget degrades to pinned+spill cleanly."""
        cache = make_cache(gpu=0, pinned=80)
        cache.access([(k, 40.0) for k in "abcd"])
        assert cache.tiers[TIER_GPU].used_bytes == 0.0
        stats = cache.stats()
        assert stats["feature_cache_gpu_used_bytes"] == 0.0
        assert stats["feature_cache_gpu_hits"] == 0
        # Everything is still cache-managed: 2 blocks pinned, 2 spilled.
        assert cache.tiers[TIER_PINNED].used_bytes == 80.0
        assert cache.tiers[TIER_SPILL].used_bytes == 80.0
        plan = cache.access([(k, 40.0) for k in "abcd"])
        assert plan.pinned_hits + plan.spill_hits == 4

    def test_clock_policy_spares_hot_blocks(self):
        cache = make_cache(gpu=100, pinned=0, policy="clock")
        cache.access([("hot", 50.0), ("cold", 50.0)])
        cache.access([("hot", 50.0)])  # sets hot's reference bit
        cache.access([("new", 50.0)])  # evicts cold, not hot
        assert cache.tier_of("hot") == TIER_GPU
        assert cache.tier_of("cold") == TIER_SPILL


class TestDirtyAndInvalidate:
    def test_mark_dirty_only_flags_resident_blocks(self):
        cache = make_cache()
        cache.access([("a", 40.0)])
        cache.mark_dirty(["a", "ghost"])
        assert cache.is_dirty("a")
        assert not cache.is_dirty("ghost")

    def test_dirty_block_survives_demotion(self):
        cache = make_cache(gpu=100, pinned=100)
        cache.access([("a", 60.0)])
        cache.mark_dirty(["a"])
        cache.access([("b", 60.0)])  # demotes a to pinned
        assert cache.tier_of("a") == TIER_PINNED
        assert cache.is_dirty("a")
        assert cache.stats()["feature_cache_writebacks"] == 0

    def test_final_eviction_of_dirty_block_is_a_writeback(self):
        cache = make_cache(gpu=100, pinned=0, spill=0)
        cache.access([("a", 60.0)])
        cache.mark_dirty(["a"])
        cache.access([("b", 60.0)])  # a falls off the bottom
        stats = cache.stats()
        assert stats["feature_cache_writebacks"] == 1
        assert stats["feature_cache_writeback_bytes"] == 60.0
        assert not cache.is_dirty("a")

    def test_invalidate_drops_blocks_and_clears_dirty(self):
        cache = make_cache()
        cache.access([("a", 40.0), ("b", 40.0)])
        cache.mark_dirty(["a"])
        assert cache.invalidate(["a", "nope"]) == 1
        assert "a" not in cache
        assert not cache.is_dirty("a")
        assert cache.stats()["feature_cache_invalidations"] == 1
        # The next access is a genuine miss, not a stale hit.
        assert cache.access([("a", 40.0)]).misses == 1

    def test_clear_resets_residency_but_keeps_counters(self):
        cache = make_cache()
        cache.access([("a", 40.0)])
        cache.clear()
        assert "a" not in cache
        assert cache.stats()["feature_cache_misses"] == 1


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["access", "dirty", "invalidate"]),
            st.integers(min_value=0, max_value=11),
        ),
        max_size=60,
    ),
    gpu=st.integers(min_value=0, max_value=120),
    pinned=st.integers(min_value=0, max_value=120),
    spill=st.one_of(st.none(), st.integers(min_value=0, max_value=120)),
    policy=st.sampled_from(["lru", "clock"]),
)
def test_eviction_never_loses_a_dirty_row(ops, gpu, pinned, spill, policy):
    """Property: a dirtied block is resident, invalidated, or written back.

    Whatever interleaving of accesses, dirty marks and invalidations the
    cache sees, dirty bytes are conserved — eviction out of the bottom tier
    must account a writeback, never drop the block silently.
    """
    cache = FeatureCache(
        gpu_budget_bytes=gpu,
        pinned_budget_bytes=pinned,
        spill_budget_bytes=spill,
        policy=policy,
    )
    dirtied_bytes = 0.0
    invalidated_dirty_bytes = 0.0
    for op, block in ops:
        key = f"k{block}"
        nbytes = float(10 + block)
        if op == "access":
            cache.access([(key, nbytes)])
        elif op == "dirty":
            was_dirty = cache.is_dirty(key)
            cache.mark_dirty([key])
            if cache.is_dirty(key) and not was_dirty:
                dirtied_bytes += nbytes
        else:
            if cache.is_dirty(key):
                invalidated_dirty_bytes += nbytes
            cache.invalidate([key])
    resident_dirty_bytes = sum(
        cache.tiers[cache.tier_of(key)].entries[key] for key in cache.dirty_keys()
    )
    written_back = cache.stats()["feature_cache_writeback_bytes"]
    assert dirtied_bytes == pytest.approx(
        resident_dirty_bytes + invalidated_dirty_bytes + written_back
    )
    # And every dirty key the cache still tracks really is resident.
    assert all(key in cache for key in cache.dirty_keys())


class TestHelpers:
    def test_blocks_covering_partial_ranges(self):
        assert blocks_covering(0, 10, 4) == [(0, 0, 4), (1, 4, 8), (2, 8, 10)]
        assert blocks_covering(5, 7, 4) == [(1, 5, 7)]
        assert blocks_covering(5, 5, 4) == []

    def test_blocks_of_rows_dedups_and_sorts(self):
        assert blocks_of_rows([9, 1, 8, 0], 4) == [0, 2]

    def test_aggregate_recomputes_hit_rate(self):
        a = make_cache()
        b = make_cache()
        a.access([("x", 10.0)])
        a.access([("x", 10.0)])  # 1 hit, 1 miss
        b.access([("y", 10.0)])  # 1 miss
        merged = aggregate_cache_stats([a.stats(), b.stats()])
        assert merged["feature_cache_misses"] == 2
        assert merged["feature_cache_gpu_hits"] == 1
        assert merged["feature_cache_hit_rate"] == pytest.approx(1.0 / 3.0)

    def test_rejects_negative_budgets(self):
        with pytest.raises(ValueError, match="budgets"):
            FeatureCache(gpu_budget_bytes=-1)
