"""Feature-cache integration: trainers, serving, oversized graphs, engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, MemorySpec, RunSpec, ServingSpec, TraceSpec
from repro.baselines import TrainerConfig
from repro.core.trainer import PiPADTrainer
from repro.gpu.device import OutOfMemoryError
from repro.memory import MemoryConfig
from repro.nn import build_model
from repro.serving import ServingConfig, synthesize_serving_trace
from repro.serving.scheduler import _build_serving_scheduler

#: multiplier pushing small_graph's frame features past the 16 GiB HBM
OVERSIZED_SCALE = 2.0e7


def _trainer(graph, *, memory=None, cost_scale=None, epochs=2):
    config = TrainerConfig(
        model="tgcn", frame_size=4, epochs=epochs, seed=0, cost_scale=cost_scale
    )
    return PiPADTrainer(graph, config, memory_config=memory)


class TestTrainingBitIdentity:
    def test_losses_identical_with_cache_on_and_off(self, small_graph):
        """The cache is byte accounting only: numerics must not notice it."""
        baseline = _trainer(small_graph).train()
        cached = _trainer(
            small_graph,
            memory=MemoryConfig(
                feature_cache=True, gpu_budget_mb=1.0, pinned_budget_mb=1.0,
                block_rows=16,
            ),
        ).train()
        assert [m.loss for m in cached.epoch_metrics] == [
            m.loss for m in baseline.epoch_metrics
        ]
        assert cached.final_loss == baseline.final_loss

    def test_cache_metrics_surface_only_when_enabled(self, small_graph):
        off = _trainer(small_graph).train()
        assert not any(k.startswith("feature_cache") for k in off.extras)
        on = _trainer(
            small_graph,
            memory=MemoryConfig(feature_cache=True, gpu_budget_mb=1.0, block_rows=16),
        ).train()
        assert on.extras["feature_cache_misses"] > 0
        assert 0.0 <= on.extras["feature_cache_hit_rate"] <= 1.0

    def test_cache_reduces_transfer_time_when_everything_fits(self, small_graph):
        """At 100% fit the steady epochs skip transfers and get faster."""
        baseline = _trainer(small_graph, epochs=3).train()
        cached = _trainer(
            small_graph,
            epochs=3,
            memory=MemoryConfig(feature_cache=True, gpu_budget_mb=64.0, block_rows=64),
        ).train()
        assert cached.extras["feature_cache_gpu_hits"] > 0
        assert cached.simulated_seconds <= baseline.simulated_seconds


class TestOversizedTraining:
    def test_uncached_oversized_frame_is_refused(self, small_graph):
        with pytest.raises(OutOfMemoryError, match="feature_cache=true"):
            _trainer(small_graph, cost_scale=OVERSIZED_SCALE)

    def test_cache_makes_the_oversized_frame_trainable(self, small_graph):
        memory = MemoryConfig(
            feature_cache=True, gpu_budget_mb=1024.0, pinned_budget_mb=700.0,
            block_rows=2,
        )
        result = _trainer(
            small_graph, cost_scale=OVERSIZED_SCALE, memory=memory, epochs=2
        ).train()
        assert np.isfinite(result.final_loss)
        assert result.extras["feature_cache_misses"] > 0
        # The overflow really went through the lower tiers.
        assert result.extras["feature_cache_spill_used_bytes"] > 0

    def test_oversized_losses_match_a_fitting_run(self, small_graph):
        """cost_scale only scales the simulated hardware costs: the cached
        oversized run must reproduce the fitting run's losses bit-for-bit."""
        fitting = _trainer(small_graph).train()
        oversized = _trainer(
            small_graph,
            cost_scale=OVERSIZED_SCALE,
            memory=MemoryConfig(feature_cache=True, gpu_budget_mb=1024.0, block_rows=2),
        ).train()
        assert [m.loss for m in oversized.epoch_metrics] == [
            m.loss for m in fitting.epoch_metrics
        ]


def _serving(graph, *, memory=None, scale=1.0, **config_kwargs):
    defaults = dict(
        window=4, max_batch_requests=4, max_delay_ms=0.5, enable_reuse=False
    )
    defaults.update(config_kwargs)
    model = build_model("tgcn", graph.feature_dim, 8, seed=0)
    return _build_serving_scheduler(
        graph, model, ServingConfig(**defaults), scale=scale, memory=memory
    )


SERVING_MEMORY = MemoryConfig(
    feature_cache=True, gpu_budget_mb=1.0, pinned_budget_mb=1.0, block_rows=16
)


class TestServingCache:
    def test_predictions_identical_with_cache_on_and_off(self, small_graph):
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=3)
        plain = _serving(small_graph)
        cached = _serving(small_graph, memory=SERVING_MEMORY)
        preds = {"plain": {}, "cached": {}}
        for name, engine in (("plain", plain), ("cached", cached)):
            for event in sorted(trace, key=lambda e: e.time):
                for result in engine.pump(event.time):
                    preds[name].update(result.predictions)
                if event.kind == "delta":
                    engine.ingest(event.delta, at=event.time)
                else:
                    engine.submit(event.node_ids, at=event.time)
            for result in engine.pump(None, force=True):
                preds[name].update(result.predictions)
        assert preds["plain"].keys() == preds["cached"].keys()
        for rid, rows in preds["plain"].items():
            np.testing.assert_array_equal(rows, preds["cached"][rid])
        stats = cached.feature_cache.stats()
        assert stats["feature_cache_misses"] > 0
        assert stats["feature_cache_invalidations"] > 0

    def test_delta_invalidates_rows_raced_by_inflight_prefetch(self, small_graph):
        """A delta landing while a batch's prefetch is still in flight on the
        simulated timeline must drop the touched blocks: the next access
        re-misses instead of serving stale residency."""
        engine = _serving(small_graph, memory=SERVING_MEMORY)
        trace = synthesize_serving_trace(small_graph[-1], 40, seed=3)
        delta = next(e.delta for e in trace if e.kind == "delta")
        engine.submit(range(small_graph.num_nodes), at=0.0)
        results = engine.pump(0.0, force=True)
        assert results, "batch must have executed (prefetch scheduled)"
        populated = sum(len(t.entries) for t in engine.feature_cache.tiers.values())
        assert populated > 0
        # The batch completes later on the simulated clock; the delta lands
        # *before* that completion time — racing the in-flight transfer.
        assert results[0].completion_time > 0.0
        report = engine.ingest(delta, at=0.0)
        touched_blocks = {
            int(r) // SERVING_MEMORY.block_rows for r in report.touched_rows
        }
        stats = engine.feature_cache.stats()
        assert stats["feature_cache_invalidations"] == len(touched_blocks)
        for block in touched_blocks:
            assert block not in engine.feature_cache
        # Re-accessing the invalidated rows is a miss, never a stale hit.
        before = engine.feature_cache.counters["misses"]
        engine.submit(range(small_graph.num_nodes), at=1.0)
        engine.pump(1.0, force=True)
        assert engine.feature_cache.counters["misses"] >= before + len(touched_blocks)

    def test_uncached_oversized_window_is_refused(self, small_graph):
        with pytest.raises(OutOfMemoryError, match="feature_cache=true"):
            _serving(small_graph, scale=OVERSIZED_SCALE)

    def test_cache_makes_the_oversized_window_servable(self, small_graph):
        engine = _serving(
            small_graph,
            scale=OVERSIZED_SCALE,
            memory=MemoryConfig(
                feature_cache=True, gpu_budget_mb=1024.0, block_rows=2
            ),
        )
        engine.submit([0, 1, 2], at=0.0)
        results = engine.pump(0.0, force=True)
        assert len(results) == 1
        report = engine.report()
        assert report.extras["feature_cache_misses"] > 0


class TestEngineEndToEnd:
    @pytest.fixture(scope="class")
    def oversized_report(self):
        spec = RunSpec(
            dataset="covid19_england",
            model="tgcn",
            method="pipad",
            num_snapshots=8,
            frame_size=4,
            epochs=2,
            cost_scale=5.0e7,
            memory=MemorySpec(
                feature_cache=True, gpu_budget_mb=1024.0, pinned_budget_mb=700.0,
                block_rows=16,
            ),
            serving=ServingSpec(
                kind="local",
                window=4,
                max_batch_requests=4,
                max_delay_ms=0.5,
                trace=TraceSpec(num_events=30, seed=5),
            ),
        )
        return Engine.from_spec(spec).run()

    def test_oversized_spec_trains_and_serves(self, oversized_report):
        report = oversized_report
        assert np.isfinite(report.training.final_loss)
        assert report.serving.metrics.num_requests > 0

    def test_cache_metrics_reach_run_report_metrics(self, oversized_report):
        metrics = oversized_report.metrics
        assert metrics["train.extras.feature_cache_misses"] > 0
        assert "train.extras.feature_cache_hit_rate" in metrics
        assert metrics["serving.extras.feature_cache_misses"] > 0

    def test_cache_spans_reach_the_trace(self, oversized_report, tmp_path):
        spec = oversized_report.spec.replace(
            telemetry=oversized_report.spec.telemetry.replace(
                trace_path=str(tmp_path / "trace.json")
            )
        )
        engine = Engine.from_spec(spec)
        report = engine.run()
        engine.export_artifacts(report)
        trace = (tmp_path / "trace.json").read_text()
        assert "cache_" in trace
