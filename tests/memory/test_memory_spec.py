"""MemorySpec validation, serialization and CLI override coercion."""

from __future__ import annotations

import pytest

from repro.api import MemorySpec, RunSpec
from repro.api.cli import load_spec
from repro.gpu.memory_model import feature_cache_budget_bytes
from repro.gpu.spec import GPUSpec
from repro.memory import MemoryConfig


class TestValidation:
    def test_defaults_are_off(self):
        spec = MemorySpec()
        assert spec.feature_cache is False
        assert spec.policy == "lru"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="cache policy"):
            MemorySpec(policy="arc")

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="gpu_budget_fraction"):
            MemorySpec(gpu_budget_fraction=1.5)

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError, match="gpu_budget_mb"):
            MemorySpec(gpu_budget_mb=-1.0)
        with pytest.raises(ValueError, match="pinned_budget_mb"):
            MemorySpec(pinned_budget_mb=-1.0)
        with pytest.raises(ValueError, match="spill_budget_mb"):
            MemorySpec(spill_budget_mb=-1.0)

    def test_block_rows_must_be_positive_int(self):
        with pytest.raises(ValueError, match="block_rows"):
            MemorySpec(block_rows=0)
        with pytest.raises(ValueError, match="block_rows"):
            MemorySpec(block_rows=1.5)

    def test_to_memory_config_mirrors_fields(self):
        spec = MemorySpec(
            feature_cache=True,
            policy="clock",
            gpu_budget_mb=64.0,
            pinned_budget_mb=32.0,
            spill_budget_mb=128.0,
            block_rows=16,
        )
        config = spec.to_memory_config()
        assert isinstance(config, MemoryConfig)
        assert config.feature_cache is True
        assert config.policy == "clock"
        assert config.gpu_budget_mb == 64.0
        assert config.pinned_budget_mb == 32.0
        assert config.spill_budget_mb == 128.0
        assert config.block_rows == 16


class TestRunSpecPlumbing:
    def test_default_memory_section(self):
        spec = RunSpec(dataset="covid19_england")
        assert spec.memory == MemorySpec()

    def test_json_round_trip_with_memory(self):
        spec = RunSpec(
            dataset="flickr",
            memory=MemorySpec(feature_cache=True, policy="clock", block_rows=32),
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.memory.policy == "clock"

    def test_mapping_coercion(self):
        spec = RunSpec.from_dict(
            {"dataset": "flickr", "memory": {"feature_cache": True, "block_rows": 8}}
        )
        assert isinstance(spec.memory, MemorySpec)
        assert spec.memory.feature_cache is True
        assert spec.memory.block_rows == 8

    def test_unknown_memory_key_rejected(self):
        with pytest.raises(ValueError, match="unknown MemorySpec key"):
            RunSpec.from_dict({"dataset": "flickr", "memory": {"hbm_gb": 32}})


class TestCliOverrides:
    def test_set_memory_overrides_coerce(self):
        spec = load_spec(
            "quick",
            [
                "memory.feature_cache=true",
                "memory.policy=clock",
                "memory.gpu_budget_mb=64",
                "memory.block_rows=32",
            ],
        )
        assert spec.memory.feature_cache is True
        assert spec.memory.policy == "clock"
        assert spec.memory.gpu_budget_mb == 64
        assert spec.memory.block_rows == 32

    def test_python_literal_spelling_accepted(self):
        spec = load_spec("quick", ["memory.feature_cache=True"])
        assert spec.memory.feature_cache is True

    def test_oversized_preset_loads(self):
        spec = load_spec("train-oversized")
        assert spec.memory.feature_cache is True
        assert spec.serving is not None


class TestBudgetDerivation:
    def test_budget_subtracts_reservations(self):
        gpu = GPUSpec()
        budget = feature_cache_budget_bytes(
            gpu, model_bytes=1024**3, activation_bytes=1024**3, fraction=0.5
        )
        expected = int((gpu.memory_bytes * 0.9 - 2 * 1024**3) * 0.5)
        assert budget == expected

    def test_budget_floors_at_zero(self):
        gpu = GPUSpec()
        assert (
            feature_cache_budget_bytes(gpu, activation_bytes=1e18, fraction=0.5) == 0
        )

    def test_budget_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            feature_cache_budget_bytes(GPUSpec(), fraction=1.5)
        with pytest.raises(ValueError):
            feature_cache_budget_bytes(GPUSpec(), safety=0.0)
